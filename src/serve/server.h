// Transport for the zcomm_serve daemon: accepts JSON-line requests over a
// Unix-domain socket, a loopback TCP socket, and/or stdin, and feeds them
// to serve::Service. One reader thread per connection; response lines are
// written under a per-connection mutex because admitted requests answer
// later from service workers. Connection state is shared_ptr-owned so a
// response for a client that already disconnected writes into a closed
// socket (and is dropped) instead of a dangling one.
//
// An optional loopback HTTP/1.0 listener serves the observability plane:
// GET /metrics (Prometheus text exposition), GET /healthz (200 "ok" or
// 503 "draining"), and GET /flight (the flight-recorder dump as JSON).
// One short-lived thread per HTTP request; no keep-alive.
//
// Shutdown: run() returns after (a) a {"cmd":"shutdown"} request, (b)
// request_stop() — which install_signal_handlers() wires to SIGINT and
// SIGTERM via a self-pipe — or (c) EOF on stdin when stdin serving is on.
// All paths drain gracefully: the JSON listeners close first (no new
// connections), the service finishes every admitted request (their
// responses still reach their clients), then connections close and reader
// threads join. The HTTP listener stays up THROUGH the drain — /healthz
// flips to 503 the moment the drain begins and stays scrapeable until the
// last admitted request finishes — via a second stop-pipe byte: 's' (stop
// requested) starts a background drain, 'd' (drain done) ends the loop.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/service.h"

namespace zc::serve {

struct ServerOptions {
  std::string unix_socket_path;  ///< empty = no Unix listener
  int tcp_port = -1;             ///< -1 = no TCP; 0 = kernel-chosen port
  int http_port = -1;            ///< -1 = no HTTP; 0 = kernel-chosen port
  bool serve_stdin = false;      ///< read requests from stdin, answer on stdout
  ServiceOptions service;
};

class Server {
 public:
  /// Binds the configured listeners (throws zc::Error on bind/listen
  /// failure) but accepts nothing until run().
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until shutdown (see file comment). Returns 0 on a clean
  /// drain. Callable once.
  int run();

  /// Asynchronously asks run() to stop and drain. Safe from any thread
  /// and from signal handlers (a single write to a pipe).
  void request_stop();

  /// The bound TCP port (resolves tcp_port == 0), -1 when TCP is off.
  [[nodiscard]] int tcp_port() const { return tcp_port_; }

  /// The bound HTTP port (resolves http_port == 0), -1 when HTTP is off.
  [[nodiscard]] int http_port() const { return http_port_; }

  [[nodiscard]] Service& service() { return service_; }

  /// Points SIGINT/SIGTERM at the given server's request_stop (replacing
  /// any previous registration).
  static void install_signal_handlers(Server& server);

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  void serve_http(const std::shared_ptr<Connection>& conn);
  void run_stdin();
  void close_json_listeners();  ///< Unix + TCP only; HTTP survives the drain
  void shutdown_listeners();

  ServerOptions options_;
  Service service_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int http_fd_ = -1;
  int http_port_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::thread drainer_thread_;  ///< runs service_.drain() during shutdown

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
  std::thread accept_thread_;
  int next_client_ = 0;
};

}  // namespace zc::serve
