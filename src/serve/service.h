// The zcomm_serve engine, transport-free: parse one request line, admit it
// past a bounded queue, execute it on a worker thread against the shared
// content-keyed plan cache, and stream response lines through a caller
// -supplied emit callback. src/serve/server.h wires this to sockets and
// stdin; tests and the throughput bench drive it in-process.
//
// Admission control: at most `max_queue_depth` optimize requests may be
// admitted-but-unfinished (queued + executing). Beyond that the request is
// refused synchronously with an "overloaded" error carrying retry_after_ms.
// Control commands (ping/stats/shutdown) are never queued — they answer
// immediately even under full load, so the daemon stays observable.
// drain() stops admission ("shutting_down" errors), finishes every
// admitted request, and joins the workers — the graceful-shutdown path.
//
// Determinism: response streams are built to be bit-identical for
// identical requests no matter which client asks, how many ask at once, or
// whether the plan came from the cache — reports are assembled with
// metrics_snapshot off and no pass log (a cached plan carries none), and
// no wall-clock time appears in any response line (latency goes to the
// stats registry instead). A request's run grid (experiments x procs)
// fans onto an exec::ThreadPool when batch_jobs > 1; results are emitted
// in grid order regardless of completion order (the pool's determinism
// contract).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <ctime>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/exec/plan_cache.h"
#include "src/serve/flight.h"
#include "src/serve/protocol.h"
#include "src/support/metrics.h"
#include "src/tseries/tseries.h"
#include "src/zir/program.h"

namespace zc::serve {

struct ServiceOptions {
  /// Worker threads executing admitted optimize requests.
  int jobs = 2;
  /// exec::ThreadPool width for one request's run grid (experiments x
  /// procs). 1 = inline, the exact serial path.
  int batch_jobs = 1;
  /// Admission cap: optimize requests admitted but not yet finished
  /// (queued + executing). Full -> "overloaded" + retry_after_ms.
  int max_queue_depth = 64;
  /// Advisory backoff stamped on overload responses.
  int retry_after_ms = 50;
  /// Per-request cap on simulated processors (admission-side resource
  /// guard; the protocol's own bound is far looser).
  int max_procs = 4096;
  /// Request lines larger than this are rejected (also the JSON parser's
  /// byte limit for request documents).
  std::size_t max_line_bytes = 1u << 20;
  /// JSON nesting bound for request documents.
  int max_depth = 64;
  /// The plan cache to answer from; null = the process-wide shared cache.
  exec::PlanCache* plan_cache = nullptr;
  /// Flight-recorder depth (recent ring + slowest set, see serve/flight.h).
  /// 0 disables the recorder AND the per-request profiler — the
  /// zero-cost-when-off path back to plain PR 6 execution.
  std::size_t flight_capacity = 16;
  /// Requests whose execution latency meets this threshold are logged at
  /// warn with their phase breakdown; <= 0 disables the slow
  /// classification (entries still record).
  double slow_request_seconds = 1.0;
  /// Test/ops seam: every optimize request sleeps this long inside a
  /// "debug_sleep" profiler span before any work — a deterministic slow
  /// request for exercising the flight recorder (0 = off).
  int debug_sleep_ms = 0;
  /// Test seam: runs on the worker thread as it picks up each admitted
  /// request, before any work — lets tests hold workers at a barrier to
  /// fill the queue deterministically.
  std::function<void()> on_job_start;
};

class Service {
 public:
  /// Receives one response line (no trailing newline). Must be callable
  /// from worker threads and must stay valid until the request finishes
  /// (drain() guarantees a point after which no emit runs).
  using Emit = std::function<void(const std::string&)>;

  explicit Service(ServiceOptions options);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Parses and dispatches one request line from `client` (a label used
  /// for per-client metrics). Errors and control commands answer
  /// synchronously through `emit`; admitted optimize requests answer later
  /// from a worker thread. Returns false when the request asked the
  /// daemon to shut down (the transport should then drain and exit);
  /// true otherwise. Never throws on any input.
  bool handle_line(const std::string& client, std::string_view line, Emit emit);

  /// Stops admission, finishes every admitted request, joins the workers.
  /// Idempotent; the destructor calls it.
  void drain();

  /// Stops admission (new optimize requests get "shutting_down") without
  /// waiting — flips /healthz to draining the moment a shutdown begins,
  /// while drain() finishes the admitted work. Idempotent.
  void begin_drain();

  [[nodiscard]] bool draining() const;

  /// Admitted-but-unfinished optimize requests (queued + executing).
  [[nodiscard]] int in_flight() const;

  /// The {"cmd":"stats"} payload (stats_version 2): the service registry
  /// (request counts, latency histograms, per-client counters), plan-cache
  /// stats, the admission queue's state, server uptime, and per-error-code
  /// counts. Field ordering is bit-stable (json::Value dumps sorted keys).
  [[nodiscard]] json::Value stats_json() const;

  /// The {"cmd":"flight"} payload: the flight recorder's rings (empty
  /// rings when the recorder is disabled).
  [[nodiscard]] json::Value flight_json() const;

  /// The `GET /timeseries` body: the daemon's windowed wall-clock series
  /// (zc-wall-timeline; bounded memory over any uptime via folding).
  /// Channels: "requests" (completions per window), "errors" (refusals +
  /// failures), "latency" (summed request seconds; mean = latency /
  /// requests), "queue_depth" (admission-time depth samples; average =
  /// queue_depth / requests admitted in the window).
  [[nodiscard]] json::Value timeseries_json() const;

  /// The `GET /metrics` body: refreshes the derived gauges (uptime, queue
  /// depth, plan-cache hit ratio and totals, flight-recorder count) and
  /// renders the registry as Prometheus text exposition.
  [[nodiscard]] std::string metrics_prometheus();

  /// Seconds since this service was constructed.
  [[nodiscard]] double uptime_seconds() const;

  [[nodiscard]] metrics::Registry& registry() { return registry_; }
  [[nodiscard]] exec::PlanCache& plan_cache() { return *cache_; }
  [[nodiscard]] const FlightRecorder* flight_recorder() const { return flight_.get(); }

  /// Drops memoized programs and plans (the bench harness's cold mode).
  void clear_caches();

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Request request;
    std::string client;
    Emit emit;
    Clock::time_point admitted_at{};
    long long request_number = 0;     ///< service-wide monotonic id
    double queue_wait_seconds = 0.0;  ///< stamped by the worker at pickup
  };

  void worker_loop();
  void execute(const Job& job);

  /// The parsed program for a request (memoized by benchmark name /
  /// source text) plus the config overrides the run should start from.
  /// `canonical` is zir::to_source(*program), computed once at memoization
  /// so plan-cache lookups skip the per-lookup program serialization.
  struct ResolvedProgram {
    std::shared_ptr<const zir::Program> program;
    std::shared_ptr<const std::string> canonical;
    std::map<std::string, long long> base_configs;
  };
  ResolvedProgram resolve_program(const OptimizeRequest& o);

  /// timeseries_ channel indices (fixed at construction).
  enum TimeseriesChannel { kTsRequests = 0, kTsErrors, kTsLatency, kTsQueueDepth };

  ServiceOptions options_;
  exec::PlanCache* cache_;
  metrics::Registry registry_;
  /// Windowed request-rate / error / latency / queue-depth series (one row;
  /// thread-safe — workers and the admission path write concurrently).
  tseries::WallSeries timeseries_{
      1, {"requests", "errors", "latency", "queue_depth"}};
  const Clock::time_point started_at_ = Clock::now();
  /// Wall-clock start for zcomm_start_time_seconds (uptime math stays on
  /// the steady clock above).
  const long long started_unix_ = static_cast<long long>(std::time(nullptr));
  std::atomic<long long> next_request_{0};
  std::unique_ptr<FlightRecorder> flight_;  ///< null when flight_capacity == 0

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes workers on enqueue / stop
  std::condition_variable idle_cv_;  ///< wakes drain() on completion
  std::deque<Job> queue_;
  int executing_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  struct MemoizedProgram {
    std::shared_ptr<const zir::Program> program;
    std::shared_ptr<const std::string> canonical;
  };
  std::mutex programs_mu_;
  std::map<std::string, MemoizedProgram> programs_;
};

}  // namespace zc::serve
