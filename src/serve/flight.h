// Flight recorder for the zcomm_serve daemon: a bounded in-memory ring of
// recently finished requests plus a bounded "slowest ever" set, each entry
// carrying the request's correlation data (monotonic request number, wire
// id, client), its outcome (error code or success, cache hits/misses),
// its latency split (queue wait vs execution), and a per-phase host-time
// breakdown from the request-scoped prof::Profiler — the ops answer to
// "why was *that* request slow", dumpable live via {"cmd":"flight"}.
//
// Recording is one mutex-guarded heap publish per finished request (never
// per message) — both rings share one immutable entry, so placing into the
// slowest set shifts pointers, not strings; with the recorder disabled
// (capacity 0) the service skips the per-request profiler entirely, so the
// path back to PR 6 behavior is zero-cost.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace zc::serve {

/// One row of a request's host-profile breakdown ('/'-joined span path).
struct FlightPhase {
  std::string path;
  long long count = 0;
  double seconds = 0.0;
};

/// Everything the recorder keeps about one finished request.
struct FlightEntry {
  long long request_number = 0;  ///< service-wide monotonic id (from 1)
  std::string id;                ///< the wire request id (may be empty)
  std::string client;
  std::string label;       ///< OptimizeRequest::label()
  std::string cache;       ///< "hit", "miss", "mixed", or "" (no plans)
  std::string error_code;  ///< empty = success
  long long cache_hits = 0;
  long long cache_misses = 0;
  double queue_wait_seconds = 0.0;
  double latency_seconds = 0.0;           ///< execution (excludes queue wait)
  double finished_uptime_seconds = 0.0;   ///< vs the service start
  std::vector<FlightPhase> phases;

  [[nodiscard]] json::Value to_json() const;
};

class FlightRecorder {
 public:
  /// `capacity` bounds both the recent ring and the slowest set;
  /// `slow_threshold_seconds` <= 0 disables the slow classification.
  FlightRecorder(std::size_t capacity, double slow_threshold_seconds);

  /// Records one finished request. Returns true when the entry's latency
  /// meets the slow threshold (the caller logs those).
  bool record(FlightEntry entry);

  /// {"capacity":N, "slow_threshold_ms":T, "recorded":R,
  ///  "recent":[newest-first entries], "slowest":[descending latency]}.
  [[nodiscard]] json::Value to_json() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] double slow_threshold_seconds() const { return slow_threshold_; }

  /// Requests recorded over the recorder's lifetime (not bounded by
  /// capacity) — the serve_flight_recorded gauge.
  [[nodiscard]] long long recorded() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return recorded_;
  }

 private:
  const std::size_t capacity_;
  const double slow_threshold_;

  using EntryPtr = std::shared_ptr<const FlightEntry>;

  mutable std::mutex mu_;
  long long recorded_ = 0;
  std::deque<EntryPtr> recent_;   ///< newest at the front
  std::vector<EntryPtr> slowest_; ///< descending latency, size <= capacity
};

}  // namespace zc::serve
