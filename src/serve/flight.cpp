#include "src/serve/flight.h"

#include <algorithm>
#include <utility>

namespace zc::serve {

json::Value FlightEntry::to_json() const {
  using json::Value;
  Value v = Value::make_object();
  v["request_number"] = Value::make_int(request_number);
  v["id"] = Value::make_str(id);
  v["client"] = Value::make_str(client);
  v["label"] = Value::make_str(label);
  v["cache"] = Value::make_str(cache);
  v["error_code"] = Value::make_str(error_code);
  v["cache_hits"] = Value::make_int(cache_hits);
  v["cache_misses"] = Value::make_int(cache_misses);
  v["queue_wait_ms"] = Value::make_num(queue_wait_seconds * 1e3);
  v["latency_ms"] = Value::make_num(latency_seconds * 1e3);
  v["finished_uptime_seconds"] = Value::make_num(finished_uptime_seconds);
  Value rows = Value::make_array();
  for (const FlightPhase& p : phases) {
    Value row = Value::make_object();
    row["path"] = Value::make_str(p.path);
    row["count"] = Value::make_int(p.count);
    row["ms"] = Value::make_num(p.seconds * 1e3);
    rows.push_back(std::move(row));
  }
  v["phases"] = std::move(rows);
  return v;
}

FlightRecorder::FlightRecorder(std::size_t capacity, double slow_threshold_seconds)
    : capacity_(capacity), slow_threshold_(slow_threshold_seconds) {}

bool FlightRecorder::record(FlightEntry entry) {
  const bool slow = slow_threshold_ > 0.0 && entry.latency_seconds >= slow_threshold_;
  const EntryPtr e = std::make_shared<const FlightEntry>(std::move(entry));
  const std::lock_guard<std::mutex> lk(mu_);
  ++recorded_;
  // Slowest set: insert in descending latency order, drop the fastest
  // overflow. Both rings share the one immutable entry, so placing shifts
  // pointers, never strings.
  const auto at = std::upper_bound(
      slowest_.begin(), slowest_.end(), e,
      [](const EntryPtr& a, const EntryPtr& b) {
        return a->latency_seconds > b->latency_seconds;
      });
  if (at != slowest_.end() || slowest_.size() < capacity_) {
    slowest_.insert(at, e);
    if (slowest_.size() > capacity_) slowest_.pop_back();
  }
  recent_.push_front(std::move(e));
  if (recent_.size() > capacity_) recent_.pop_back();
  return slow;
}

json::Value FlightRecorder::to_json() const {
  using json::Value;
  Value v = Value::make_object();
  v["capacity"] = Value::make_int(static_cast<long long>(capacity_));
  v["slow_threshold_ms"] = Value::make_num(slow_threshold_ * 1e3);
  Value recent = Value::make_array();
  Value slowest = Value::make_array();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    v["recorded"] = Value::make_int(recorded_);
    for (const EntryPtr& e : recent_) recent.push_back(e->to_json());
    for (const EntryPtr& e : slowest_) slowest.push_back(e->to_json());
  }
  v["recent"] = std::move(recent);
  v["slowest"] = std::move(slowest);
  return v;
}

}  // namespace zc::serve
