#include "src/serve/service.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <optional>
#include <thread>
#include <utility>

#include "src/analysis/blame.h"
#include "src/comm/plan.h"
#include "src/support/fingerprint.h"
#include "src/driver/driver.h"
#include "src/driver/report.h"
#include "src/exec/pool.h"
#include "src/machine/model.h"
#include "src/parser/parser.h"
#include "src/prof/prof.h"
#include "src/programs/programs.h"
#include "src/support/log.h"
#include "src/trace/recorder.h"
#include "src/zir/printer.h"

namespace zc::serve {

namespace {

/// Latency histogram bounds (seconds) shared by the request/queue-wait
/// histograms — fine enough that p50/p90/p99 interpolation is meaningful
/// for sub-millisecond cache hits and multi-second cold sweeps alike.
const std::vector<double>& latency_bounds() {
  static const std::vector<double> bounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
  return bounds;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Milliseconds with 3 decimals, for log fields ("12.345").
std::string ms_string(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

}  // namespace

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  options_.jobs = std::max(1, options_.jobs);
  options_.batch_jobs = std::max(1, options_.batch_jobs);
  options_.max_queue_depth = std::max(1, options_.max_queue_depth);
  cache_ = options_.plan_cache != nullptr ? options_.plan_cache
                                          : &exec::PlanCache::process();
  if (options_.flight_capacity > 0) {
    flight_ = std::make_unique<FlightRecorder>(options_.flight_capacity,
                                               options_.slow_request_seconds);
  }
  workers_.reserve(static_cast<std::size_t>(options_.jobs));
  for (int i = 0; i < options_.jobs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { drain(); }

bool Service::handle_line(const std::string& client, std::string_view line,
                          Emit emit) {
  registry_.count("serve.requests");
  if (!client.empty()) registry_.count("serve.client." + client + ".requests");

  Request req;
  try {
    if (line.size() > options_.max_line_bytes) {
      throw RequestError(ErrorCode::kBadRequest,
                         "request line of " + std::to_string(line.size()) +
                             " bytes exceeds the " +
                             std::to_string(options_.max_line_bytes) +
                             "-byte limit");
    }
    json::ParseLimits limits;
    limits.max_bytes = options_.max_line_bytes;
    limits.max_depth = options_.max_depth;
    req = parse_request(line, limits);
  } catch (const RequestError& e) {
    registry_.count("serve.errors.bad_request");
    timeseries_.add_at(0, kTsErrors, timeseries_.now(), 1.0);
    ZC_LOG_DEBUG("serve", "request rejected", log::field("client", client),
                 log::field("error", "bad_request"),
                 log::field("message", std::string_view(e.what())));
    emit(error_response("", e.code, e.what(), e.offset).dump(0));
    return true;
  }

  switch (req.cmd) {
    case Request::Cmd::kPing: {
      registry_.count("serve.requests.ping");
      emit(response_base("pong", req.id, 0).dump(0));
      return true;
    }
    case Request::Cmd::kStats: {
      registry_.count("serve.requests.stats");
      json::Value v = stats_json();
      v["id"] = json::Value::make_str(req.id);
      emit(v.dump(0));
      return true;
    }
    case Request::Cmd::kFlight: {
      registry_.count("serve.requests.flight");
      json::Value v = flight_json();
      v["id"] = json::Value::make_str(req.id);
      emit(v.dump(0));
      return true;
    }
    case Request::Cmd::kShutdown: {
      registry_.count("serve.requests.shutdown");
      ZC_LOG_INFO("serve", "shutdown requested", log::field("client", client));
      begin_drain();
      json::Value v = response_base("shutdown", req.id, 0);
      v["draining"] = json::Value::make_bool(true);
      emit(v.dump(0));
      return false;
    }
    case Request::Cmd::kOptimize: break;
  }

  registry_.count("serve.requests.optimize");
  // Admission: decide under the queue lock, emit after releasing it so a
  // slow client write never blocks the workers.
  std::optional<json::Value> refusal;
  std::size_t admitted_depth = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    const int admitted = static_cast<int>(queue_.size()) + executing_;
    if (draining_) {
      refusal = error_response(req.id, ErrorCode::kShuttingDown,
                               "the server is draining and admits no new work");
    } else if (admitted >= options_.max_queue_depth) {
      refusal = error_response(
          req.id, ErrorCode::kOverloaded,
          std::to_string(admitted) + " requests are already in flight (limit " +
              std::to_string(options_.max_queue_depth) + ")",
          -1, options_.retry_after_ms);
    } else {
      Job job;
      job.request = std::move(req);
      job.client = client;
      job.emit = std::move(emit);
      job.admitted_at = Clock::now();
      job.request_number = next_request_.fetch_add(1, std::memory_order_relaxed) + 1;
      queue_.push_back(std::move(job));
      admitted_depth = queue_.size();
      registry_.gauge("serve.queue_depth", static_cast<double>(queue_.size()));
    }
  }
  if (refusal.has_value()) {
    const std::string code = refusal->at("error").at("code").string;
    registry_.count("serve.errors." + code);
    timeseries_.add_at(0, kTsErrors, timeseries_.now(), 1.0);
    ZC_LOG_WARN("serve", "request refused", log::field("client", client),
                log::field("error", code));
    emit(refusal->dump(0));
  } else {
    registry_.count("serve.admitted");
    // Admission-time depth sample: queue_depth / requests-admitted in a
    // window is the window's average depth at admission.
    timeseries_.add_at(0, kTsQueueDepth, timeseries_.now(),
                       static_cast<double>(admitted_depth));
    work_cv_.notify_one();
  }
  return true;
}

void Service::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
      registry_.gauge("serve.queue_depth", static_cast<double>(queue_.size()));
    }
    if (options_.on_job_start) options_.on_job_start();
    job.queue_wait_seconds = seconds_since(job.admitted_at);
    registry_.observe("serve.queue_wait_seconds", job.queue_wait_seconds,
                      latency_bounds());
    execute(job);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      --executing_;
    }
    idle_cv_.notify_all();
  }
}

Service::ResolvedProgram Service::resolve_program(const OptimizeRequest& o) {
  ResolvedProgram rp;
  std::string_view source = o.source;
  const std::string key = o.bench.empty() ? "src:" + o.source : "bench:" + o.bench;
  if (!o.bench.empty()) {
    // Named benchmarks run at their fast test-scale configs unless the
    // request overrides them; kernels have no default configs.
    try {
      const programs::BenchmarkInfo& info = programs::benchmark(o.bench);
      source = info.source;
      rp.base_configs = info.test_configs;
    } catch (const Error&) {
      try {
        source = programs::kernel_source(o.bench);
      } catch (const Error&) {
        throw RequestError(ErrorCode::kBadRequest,
                           "unknown benchmark or kernel '" + o.bench + "'");
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lk(programs_mu_);
    const auto it = programs_.find(key);
    if (it != programs_.end()) {
      rp.program = it->second.program;
      rp.canonical = it->second.canonical;
      return rp;
    }
  }
  MemoizedProgram memo;
  try {
    memo.program = std::make_shared<zir::Program>(parser::parse_program(source));
  } catch (const Error& e) {
    throw RequestError(ErrorCode::kBadRequest,
                       std::string("program does not parse: ") + e.what());
  }
  // Printed once here; every plan-cache lookup for this program reuses it
  // instead of re-serializing the program per get_or_plan call.
  memo.canonical = std::make_shared<std::string>(zir::to_source(*memo.program));
  {
    const std::lock_guard<std::mutex> lk(programs_mu_);
    const auto [it, inserted] = programs_.emplace(key, std::move(memo));
    (void)inserted;
    rp.program = it->second.program;
    rp.canonical = it->second.canonical;
  }
  return rp;
}

void Service::execute(const Job& job) {
  const OptimizeRequest& o = job.request.optimize;
  const std::string& id = job.request.id;
  const Clock::time_point started = Clock::now();
  json::Value last;  // the request's terminal line (done or error)

  // Request-scoped host profiler: each optimize request gets its own span
  // tree ("parse" / "plan" / "sim" roots with the instrumented subsystems
  // nesting underneath), correlated by the request number. Only exists
  // when the flight recorder is on — capacity 0 restores the unprofiled
  // path, and the Attach below becomes a no-op.
  std::optional<prof::Profiler> profiler;
  if (flight_) profiler.emplace(/*max_timeline_events=*/0);
  prof::Attach prof_attach(profiler ? &*profiler : nullptr);

  if (options_.debug_sleep_ms > 0) {
    ZC_PROF_SPAN("debug_sleep");
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.debug_sleep_ms));
  }

  long long cache_hits = 0;
  long long cache_misses = 0;
  std::string error_code;  // empty = success
  try {
    for (const int p : o.procs) {
      if (p > options_.max_procs) {
        throw RequestError(ErrorCode::kBadRequest,
                           "procs " + std::to_string(p) + " exceeds this server's " +
                               std::to_string(options_.max_procs) + "-processor cap");
      }
    }

    // "all" expands to the paper's experiment set, in paper order.
    std::vector<driver::Experiment> experiments;
    if (std::find(o.experiments.begin(), o.experiments.end(), "all") !=
        o.experiments.end()) {
      experiments = driver::paper_experiments();
    } else {
      for (const std::string& name : o.experiments) {
        std::optional<driver::Experiment> e = driver::find_experiment(name);
        if (!e.has_value()) {
          throw RequestError(ErrorCode::kBadRequest,
                             "unknown experiment '" + name +
                                 "' (try baseline, rr, cc, pl, \"pl with shmem\", "
                                 "\"pl with max latency\", or all)");
        }
        experiments.push_back(std::move(*e));
      }
    }

    ResolvedProgram rp;
    {
      ZC_PROF_SPAN("parse");
      rp = resolve_program(o);
    }
    const machine::MachineModel model =
        o.machine == "paragon" ? machine::paragon_model() : machine::t3d_model();
    std::map<std::string, long long> configs = rp.base_configs;
    for (const auto& [k, v] : o.config_overrides) configs[k] = v;

    const std::string program_label = o.bench.empty() ? "<inline>" : o.bench;
    int seq = 0;

    // Phase 1 — plans, one per experiment (planning is procs-independent),
    // answered from the shared cache. The hit/miss label comes from the
    // cache counters via a scratch registry so concurrent requests can't
    // blur each other's deltas.
    std::vector<std::shared_ptr<const comm::CommPlan>> plans;
    plans.reserve(experiments.size());
    // One span for the whole planning phase (cache lookups plus plan-line
    // emission): per-experiment spans would aggregate into the same flat
    // node anyway, at six clock pairs per request instead of one.
    {
      ZC_PROF_SPAN("plan");
      for (const driver::Experiment& e : experiments) {
        metrics::Registry scratch;
        std::shared_ptr<const comm::CommPlan> plan;
        {
          metrics::ScopedRegistry scoped(scratch);
          plan = cache_->get_or_plan(*rp.program, *rp.canonical, e.opts, model.name);
        }
        const long long hits = scratch.counter("exec.plan_cache.hits");
        cache_hits += hits;
        cache_misses += scratch.counter("exec.plan_cache.misses");
        const bool hit = hits > 0;
        registry_.merge_from(scratch);

        json::Value line = response_base("plan", id, seq++);
        line["item"] = json::Value::make_str(program_label + "/" + e.name);
        line["experiment"] = json::Value::make_str(e.name);
        line["machine"] = json::Value::make_str(model.name);
        line["cache"] = json::Value::make_str(hit ? "hit" : "miss");
        line["static_count"] = json::Value::make_int(plan->static_count());
        if (job.request.optimize.plan_text) {
          line["plan_text"] =
              json::Value::make_str(comm::to_string(*plan, *rp.program));
        }
        job.emit(line.dump(0));
        plans.push_back(std::move(plan));
      }
    }

    // Phase 2 — the run grid (experiments x procs), fanned onto an
    // exec::ThreadPool when configured. Response documents are collected
    // by grid slot and emitted in grid order after the join, so the
    // stream is bit-identical no matter how the pool scheduled the runs.
    std::size_t runs = 0;
    if (o.run) {
      struct Slot {
        json::Value report;
        json::Value blame;
        json::Value critical_path;
      };
      const std::size_t n = experiments.size() * o.procs.size();
      std::vector<Slot> slots(n);
      const auto run_one = [&](std::size_t idx) {
        // Workers publish simulation counters into the service registry,
        // never the process-global one.
        metrics::ScopedRegistry scoped(registry_);
        const std::size_t ei = idx / o.procs.size();
        const int procs = o.procs[idx % o.procs.size()];
        const driver::Experiment& e = experiments[ei];

        std::optional<trace::Recorder> recorder;
        if (o.trace) recorder.emplace(procs);
        sim::RunConfig config;
        config.machine = model;
        config.library = e.library;
        config.procs = procs;
        config.config_overrides = configs;
        config.recorder = o.trace ? &*recorder : nullptr;

        const driver::Metrics m =
            driver::run_planned(*rp.program, *plans[ei], e, std::move(config));

        // Deterministic report: no pass log (a cached plan carries none)
        // and no metrics snapshot — identical requests must produce
        // bit-identical documents on every client.
        driver::ReportOptions ropts;
        ropts.benchmark = program_label;
        ropts.provenance = false;
        ropts.metrics_snapshot = false;
        Slot& slot = slots[idx];
        slot.report = driver::build_report(m, e, procs, nullptr, ropts);
        if (o.blame || o.critical_path) {
          json::Value scratch_doc = json::Value::make_object();
          driver::attach_attribution(scratch_doc, *recorder, *rp.program, m.plan);
          if (o.blame) slot.blame = std::move(scratch_doc["blame"]);
          if (o.critical_path) {
            slot.critical_path = std::move(scratch_doc["critical_path"]);
          }
        }
      };
      {
        // The span wraps the whole grid: with batch_jobs > 1 the pool's
        // threads are not attached to the request profiler, so the grid's
        // cost shows up as this span's (wall-clock) self time.
        ZC_PROF_SPAN("sim");
        if (options_.batch_jobs > 1 && n > 1) {
          exec::ThreadPool pool(options_.batch_jobs);
          pool.run(n, run_one);
        } else {
          for (std::size_t i = 0; i < n; ++i) run_one(i);
        }
      }

      for (std::size_t idx = 0; idx < n; ++idx) {
        const std::size_t ei = idx / o.procs.size();
        const int procs = o.procs[idx % o.procs.size()];
        const std::string item = program_label + "/" + experiments[ei].name + "/p" +
                                 std::to_string(procs);
        const auto emit_block = [&](std::string_view kind, json::Value body) {
          json::Value line = response_base(kind, id, seq++);
          line["item"] = json::Value::make_str(item);
          line[std::string(kind)] = std::move(body);
          job.emit(line.dump(0));
        };
        emit_block("report", std::move(slots[idx].report));
        if (o.blame) emit_block("blame", std::move(slots[idx].blame));
        if (o.critical_path) {
          emit_block("critical_path", std::move(slots[idx].critical_path));
        }
        ++runs;
      }
    }

    json::Value done = response_base("done", id, seq++);
    done["experiments"] = json::Value::make_int(static_cast<long long>(experiments.size()));
    done["runs"] = json::Value::make_int(static_cast<long long>(runs));
    registry_.count("serve.completed");
    last = std::move(done);
  } catch (const RequestError& e) {
    error_code = to_string(e.code);
    registry_.count("serve.errors." + error_code);
    last = error_response(id, e.code, e.what(), e.offset);
  } catch (const std::exception& e) {
    error_code = to_string(ErrorCode::kInternal);
    registry_.count("serve.errors.internal");
    last = error_response(id, ErrorCode::kInternal, e.what());
  }

  // Everything observable about this request — latency histogram, flight
  // entry, log lines — settles before its terminal line goes out: a client
  // that saw "done" (or the error) and immediately asks for stats or the
  // flight dump must see itself there.
  const double latency = seconds_since(started);

  const std::string cache_label = cache_hits > 0 && cache_misses > 0 ? "mixed"
                                  : cache_hits > 0                   ? "hit"
                                  : cache_misses > 0                 ? "miss"
                                                                     : "";
  const std::string label = o.label();
  if (flight_) {
    std::vector<prof::Profiler::FlatSpan> spans = profiler->flat(/*max_depth=*/3);
    // The slow classification is known before recording (same rule the
    // recorder applies), so the warn line's phase breakdown can be built
    // before the span paths are moved into the entry.
    const double threshold = flight_->slow_threshold_seconds();
    const bool slow = threshold > 0.0 && latency >= threshold;
    if (slow) {
      std::string breakdown;  // top-level phases only: "plan=1.2ms sim=40.0ms"
      for (const prof::Profiler::FlatSpan& s : spans) {
        if (s.depth != 0) continue;
        if (!breakdown.empty()) breakdown += ' ';
        breakdown += s.path + '=' + ms_string(s.total_seconds) + "ms";
      }
      ZC_LOG_WARN("serve", "slow request", log::field("req", job.request_number),
                  log::field("id", id), log::field("client", job.client),
                  log::field("label", label),
                  log::field("latency_ms", ms_string(latency)),
                  log::field("phases", breakdown));
    }
    FlightEntry entry;
    entry.request_number = job.request_number;
    entry.id = id;
    entry.client = job.client;
    entry.label = label;
    entry.cache = cache_label;
    entry.error_code = error_code;
    entry.cache_hits = cache_hits;
    entry.cache_misses = cache_misses;
    entry.queue_wait_seconds = job.queue_wait_seconds;
    entry.latency_seconds = latency;
    entry.finished_uptime_seconds = uptime_seconds();
    entry.phases.reserve(spans.size());
    for (prof::Profiler::FlatSpan& s : spans) {
      entry.phases.push_back({std::move(s.path), s.count, s.total_seconds});
    }
    flight_->record(std::move(entry));
  }
  // Debug, not info: completion lines scale with traffic, and the default
  // (info) log must stay proportional to lifecycle events. Per-request
  // observability at default settings comes from the latency histogram and
  // the flight recorder; slow requests still announce themselves at warn.
  ZC_LOG_DEBUG("serve", "request finished", log::field("req", job.request_number),
              log::field("id", id), log::field("client", job.client),
              log::field("label", label), log::field("cache", cache_label),
              log::field("error", error_code),
              log::field("queue_ms", ms_string(job.queue_wait_seconds)),
              log::field("latency_ms", ms_string(latency)));

  // Observed last so the histogram prices the whole request — execution
  // AND its telemetry (flight record, log lines). The flight entry's own
  // latency is necessarily the pre-telemetry reading.
  registry_.observe("serve.request_seconds", seconds_since(started),
                    latency_bounds());
  {
    const double t = timeseries_.now();
    timeseries_.add_at(0, kTsRequests, t, 1.0);
    timeseries_.add_at(0, kTsLatency, t, latency);
    if (!error_code.empty()) timeseries_.add_at(0, kTsErrors, t, 1.0);
  }

  job.emit(last.dump(0));
}

void Service::drain() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    draining_ = true;
    idle_cv_.wait(lk, [&] { return queue_.empty() && executing_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void Service::begin_drain() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (draining_) return;
    draining_ = true;
  }
  ZC_LOG_INFO("serve", "drain started",
              log::field("in_flight", static_cast<long long>(in_flight())));
}

bool Service::draining() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

int Service::in_flight() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(queue_.size()) + executing_;
}

json::Value Service::stats_json() const {
  json::Value v = response_base("stats", "", 0);
  v["stats_version"] = json::Value::make_int(2);
  v["uptime_seconds"] = json::Value::make_num(uptime_seconds());
  v["serve"] = registry_.to_json();
  v["plan_cache"] = cache_->stats().to_json();
  json::Value q = json::Value::make_object();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    q["depth"] = json::Value::make_int(static_cast<long long>(queue_.size()));
    q["executing"] = json::Value::make_int(executing_);
    q["draining"] = json::Value::make_bool(draining_);
  }
  q["max_depth"] = json::Value::make_int(options_.max_queue_depth);
  v["queue"] = std::move(q);
  // Per-error-code counts as a first-class object (they also appear in the
  // registry dump above, but clients should not parse counter names).
  json::Value errors = json::Value::make_object();
  for (const ErrorCode code : {ErrorCode::kBadRequest, ErrorCode::kOverloaded,
                               ErrorCode::kShuttingDown, ErrorCode::kInternal}) {
    const std::string name(to_string(code));
    errors[name] = json::Value::make_int(registry_.counter("serve.errors." + name));
  }
  v["errors"] = std::move(errors);
  return v;
}

json::Value Service::flight_json() const {
  json::Value v = response_base("flight", "", 0);
  if (flight_ != nullptr) {
    v["flight"] = flight_->to_json();
  } else {
    // Disabled recorder: the same shape, permanently empty.
    json::Value off = json::Value::make_object();
    off["capacity"] = json::Value::make_int(0);
    off["slow_threshold_ms"] = json::Value::make_num(0.0);
    off["recorded"] = json::Value::make_int(0);
    off["recent"] = json::Value::make_array();
    off["slowest"] = json::Value::make_array();
    v["flight"] = std::move(off);
  }
  return v;
}

json::Value Service::timeseries_json() const {
  json::Value v = timeseries_.to_json();
  v["uptime_seconds"] = json::Value::make_num(uptime_seconds());
  return v;
}

std::string Service::metrics_prometheus() {
  // Derived gauges refresh at scrape time; everything else in the registry
  // is maintained on the request path.
  registry_.gauge("serve.uptime_seconds", uptime_seconds());
  const exec::PlanCacheStats cs = cache_->stats();
  registry_.gauge("serve.plan_cache.hit_ratio", cs.hit_rate());
  registry_.gauge("serve.plan_cache.entries", static_cast<double>(cs.entries));
  registry_.gauge("serve.plan_cache.bytes", static_cast<double>(cs.bytes));
  {
    const std::lock_guard<std::mutex> lk(mu_);
    registry_.gauge("serve.queue_depth", static_cast<double>(queue_.size()));
    registry_.gauge("serve.executing", static_cast<double>(executing_));
    registry_.gauge("serve.draining", draining_ ? 1.0 : 0.0);
  }
  if (flight_ != nullptr) {
    registry_.gauge("serve.flight.recorded", static_cast<double>(flight_->recorded()));
  }
  // The standard build-info convention: identity as labels on a constant
  // gauge, plus the process start time — appended outside the registry so
  // neither ever leaks into per-request metric snapshots.
  std::string out = registry_.to_prometheus();
  out += fingerprint::prometheus_build_info();
  out += "# TYPE zcomm_start_time_seconds gauge\nzcomm_start_time_seconds " +
         std::to_string(started_unix_) + "\n";
  return out;
}

double Service::uptime_seconds() const { return seconds_since(started_at_); }

void Service::clear_caches() {
  cache_->clear();
  const std::lock_guard<std::mutex> lk(programs_mu_);
  programs_.clear();
}

}  // namespace zc::serve
