#include "src/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <unistd.h>

#include <iostream>
#include <utility>

#include "src/support/diag.h"
#include "src/support/log.h"

namespace zc::serve {

/// One accepted socket: the fd plus the write lock serializing response
/// lines (service workers emit concurrently with the reader's synchronous
/// error responses). shared_ptr-owned by the server's connection list and
/// by every in-flight emit closure.
struct Server::Connection {
  int fd = -1;
  std::string client;
  std::mutex write_mu;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lk(write_mu);
    if (fd < 0) return;
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // client went away; the response is dropped
      off += static_cast<std::size_t>(n);
    }
  }
};

namespace {

int make_listener_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw Error("unix socket path '" + path + "' is too long");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket(AF_UNIX) failed: " + std::string(std::strerror(errno)));
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("bind('" + path + "') failed: " + std::string(std::strerror(err)));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("listen('" + path + "') failed: " + std::string(std::strerror(err)));
  }
  return fd;
}

int make_listener_tcp(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket(AF_INET) failed: " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("bind(127.0.0.1:" + std::to_string(port) +
                ") failed: " + std::string(std::strerror(err)));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("listen failed: " + std::string(std::strerror(err)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

std::atomic<Server*> g_signal_server{nullptr};

void on_stop_signal(int) {
  Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->request_stop();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  if (::pipe(stop_pipe_) != 0) {
    throw Error("pipe() failed: " + std::string(std::strerror(errno)));
  }
  if (!options_.unix_socket_path.empty()) {
    unix_fd_ = make_listener_unix(options_.unix_socket_path);
  }
  if (options_.tcp_port >= 0) {
    tcp_fd_ = make_listener_tcp(options_.tcp_port, tcp_port_);
  }
  if (options_.http_port >= 0) {
    http_fd_ = make_listener_tcp(options_.http_port, http_port_);
  }
}

Server::~Server() {
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (drainer_thread_.joinable()) drainer_thread_.join();
  shutdown_listeners();
  service_.drain();
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (const std::shared_ptr<Connection>& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  if (g_signal_server.load() == this) g_signal_server.store(nullptr);
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
}

void Server::request_stop() {
  stopping_.store(true);
  const char byte = 's';
  // The only thing a signal handler does — async-signal-safe by POSIX.
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void Server::install_signal_handlers(Server& server) {
  g_signal_server.store(&server);
  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked stdin read returns EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void Server::accept_loop() {
  // Two-byte shutdown protocol on the stop pipe: 's' = stop requested
  // (close the JSON listeners, flip /healthz, drain in the background),
  // 'd' = the drain finished (written by drainer_thread_; exit the loop).
  // Between the two the HTTP plane stays live so operators can watch the
  // drain through /metrics and /healthz.
  bool draining = false;
  for (;;) {
    pollfd fds[4];
    nfds_t n = 0;
    fds[n++] = pollfd{stop_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = pollfd{tcp_fd_, POLLIN, 0};
    if (http_fd_ >= 0) fds[n++] = pollfd{http_fd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char byte = 's';
      if (::read(stop_pipe_[0], &byte, 1) <= 0) break;
      if (byte == 'd') break;  // the drain finished; run() takes over
      if (draining) continue;  // duplicate stop request (signal + cmd)
      draining = true;
      service_.begin_drain();
      close_json_listeners();
      drainer_thread_ = std::thread([this] {
        service_.drain();
        const char done = 'd';
        [[maybe_unused]] const ssize_t w = ::write(stop_pipe_[1], &done, 1);
      });
      continue;  // keep accepting HTTP scrapes while the drain runs
    }
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const bool is_unix = fds[i].fd == unix_fd_;
      const bool is_http = fds[i].fd == http_fd_;
      const int client_fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (client_fd < 0) continue;
      auto conn = std::make_shared<Connection>();
      conn->fd = client_fd;
      {
        const std::lock_guard<std::mutex> lk(conns_mu_);
        conn->client = (is_http   ? "http:"
                        : is_unix ? "unix:"
                                  : "tcp:") +
                       std::to_string(next_client_++);
        conns_.push_back(conn);
        if (is_http) {
          conn_threads_.emplace_back([this, conn] { serve_http(conn); });
        } else {
          conn_threads_.emplace_back([this, conn] { serve_connection(conn); });
        }
      }
    }
  }
}

void Server::serve_connection(const std::shared_ptr<Connection>& conn) {
  const auto emit = [conn](const std::string& line) { conn->write_line(line); };
  std::string buffer;
  char chunk[4096];
  const std::size_t max_line = options_.service.max_line_bytes;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF, client reset, or teardown's shutdown()
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string_view line(buffer.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      if (!service_.handle_line(conn->client, line, emit)) {
        request_stop();  // {"cmd":"shutdown"}
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > max_line) {
      // A "line" past the request size limit with no newline in sight:
      // answer once and drop the connection rather than buffer unboundedly.
      emit(error_response("", ErrorCode::kBadRequest,
                          "request line exceeds the " + std::to_string(max_line) +
                              "-byte limit")
               .dump(0));
      break;
    }
  }
}

void Server::serve_http(const std::shared_ptr<Connection>& conn) {
  // Read until the end of the request head (GETs carry no body); bound the
  // read so a hostile client can't buffer unboundedly.
  std::string head;
  char chunk[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    head.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string request_line = head.substr(0, eol);
  std::string method;
  std::string target;
  {
    const std::size_t sp1 = request_line.find(' ');
    if (sp1 != std::string::npos) {
      method = request_line.substr(0, sp1);
      const std::size_t sp2 = request_line.find(' ', sp1 + 1);
      target = request_line.substr(sp1 + 1, sp2 == std::string::npos
                                                ? std::string::npos
                                                : sp2 - sp1 - 1);
    }
  }

  int status = 200;
  std::string_view reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = 405;
    reason = "Method Not Allowed";
    body = "only GET is served\n";
  } else if (target == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = service_.metrics_prometheus();
  } else if (target == "/healthz") {
    if (service_.draining()) {
      status = 503;
      reason = "Service Unavailable";
      body = "draining\n";
    } else {
      body = "ok\n";
    }
  } else if (target == "/flight") {
    content_type = "application/json";
    body = service_.flight_json().dump(0);
    body += '\n';
  } else if (target == "/timeseries") {
    content_type = "application/json";
    body = service_.timeseries_json().dump(0);
    body += '\n';
  } else {
    status = 404;
    reason = "Not Found";
    body = "serves /metrics, /healthz, /flight, and /timeseries\n";
  }
  service_.registry().count("serve.http.requests");
  service_.registry().count("serve.http.status." + std::to_string(status));
  ZC_LOG_DEBUG("serve", "http request", log::field("client", conn->client),
               log::field("target", target), log::field("status", status));

  std::string response = "HTTP/1.0 " + std::to_string(status) + " " +
                         std::string(reason) + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  const std::lock_guard<std::mutex> lk(conn->write_mu);
  if (conn->fd < 0) return;
  std::size_t off = 0;
  while (off < response.size()) {
    const ssize_t n =
        ::send(conn->fd, response.data() + off, response.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(conn->fd, SHUT_WR);  // HTTP/1.0: response ends the exchange
}

void Server::close_json_listeners() {
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(options_.unix_socket_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

void Server::shutdown_listeners() {
  close_json_listeners();
  if (http_fd_ >= 0) {
    ::close(http_fd_);
    http_fd_ = -1;
  }
}

void Server::run_stdin() {
  std::mutex out_mu;
  const auto emit = [&out_mu](const std::string& line) {
    const std::lock_guard<std::mutex> lk(out_mu);
    std::cout << line << '\n' << std::flush;
  };
  std::string line;
  while (!stopping_.load() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!service_.handle_line("stdin", line, emit)) {
      request_stop();
      break;
    }
  }
  // Responses for still-admitted requests must flush before run() returns,
  // so the drain happens before stdout goes quiet.
  service_.drain();
}

int Server::run() {
  ::signal(SIGPIPE, SIG_IGN);
  ZC_LOG_INFO("serve", "serving",
              log::field("unix", options_.unix_socket_path),
              log::field("tcp_port", tcp_port_),
              log::field("http_port", http_port_),
              log::field("stdin", options_.serve_stdin));
  const bool have_listeners = unix_fd_ >= 0 || tcp_fd_ >= 0 || http_fd_ >= 0;
  if (have_listeners) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  if (options_.serve_stdin) {
    run_stdin();
    request_stop();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (drainer_thread_.joinable()) drainer_thread_.join();
  shutdown_listeners();  // no new connections while we drain
  service_.drain();      // every admitted request answers its client
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (const std::shared_ptr<Connection>& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  ZC_LOG_INFO("serve", "drained, exiting",
              log::field("uptime_s", service_.uptime_seconds()));
  return 0;
}

}  // namespace zc::serve
