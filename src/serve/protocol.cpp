#include "src/serve/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace zc::serve {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

std::string OptimizeRequest::label() const {
  std::string out = bench.empty() ? "<inline>" : bench;
  out += '/';
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    if (i > 0) out += ',';
    out += experiments[i];
  }
  out += '/';
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (i > 0) out += ',';
    out += 'p' + std::to_string(procs[i]);
  }
  return out;
}

namespace {

[[noreturn]] void bad(const std::string& message, long long offset = -1) {
  throw RequestError(ErrorCode::kBadRequest, message, offset);
}

/// The byte offset a json parse error message carries ("... at offset N: ..."),
/// surfaced as a first-class response field; -1 when absent.
long long extract_offset(std::string_view what) {
  const std::string_view marker = "at offset ";
  const std::size_t pos = what.find(marker);
  if (pos == std::string_view::npos) return -1;
  return std::atoll(std::string(what.substr(pos + marker.size())).c_str());
}

/// A strictly integral JSON number in [lo, hi]; `where` names the field.
long long require_int(const json::Value& v, const std::string& where, long long lo,
                      long long hi) {
  if (!v.is_number()) bad("'" + where + "' must be a number");
  const double d = v.number;
  if (!(d == std::floor(d)) || std::isinf(d)) bad("'" + where + "' must be an integer");
  const long long n = static_cast<long long>(d);
  if (n < lo || n > hi) {
    bad("'" + where + "' must be between " + std::to_string(lo) + " and " +
        std::to_string(hi));
  }
  return n;
}

bool require_bool(const json::Value& v, const std::string& where) {
  if (v.kind != json::Value::Kind::kBool) bad("'" + where + "' must be true or false");
  return v.boolean;
}

std::string require_str(const json::Value& v, const std::string& where) {
  if (!v.is_string()) bad("'" + where + "' must be a string");
  return v.string;
}

void parse_optimize(const json::Value& doc, OptimizeRequest& o) {
  const bool has_bench = doc.has("bench");
  const bool has_source = doc.has("source");
  if (has_bench == has_source) {
    bad("an optimize request needs exactly one of 'bench' or 'source'");
  }
  if (has_bench) {
    o.bench = require_str(doc.at("bench"), "bench");
    if (o.bench.empty()) bad("'bench' must not be empty");
  } else {
    o.source = require_str(doc.at("source"), "source");
    if (o.source.empty()) bad("'source' must not be empty");
  }

  if (doc.has("experiment")) {
    const json::Value& e = doc.at("experiment");
    o.experiments.clear();
    if (e.is_string()) {
      o.experiments.push_back(e.string);
    } else if (e.is_array()) {
      if (e.array.empty()) bad("'experiment' must name at least one experiment");
      for (const json::Value& item : e.array) {
        o.experiments.push_back(require_str(item, "experiment"));
      }
    } else {
      bad("'experiment' must be a string or an array of strings");
    }
    for (const std::string& name : o.experiments) {
      if (name.empty()) bad("'experiment' must not contain empty names");
    }
  }

  if (doc.has("procs")) {
    const json::Value& p = doc.at("procs");
    o.procs.clear();
    // The upper bound here is syntactic sanity; the service applies its own
    // configurable max_procs admission cap on top.
    constexpr long long kMax = 1 << 20;
    if (p.is_number()) {
      o.procs.push_back(static_cast<int>(require_int(p, "procs", 1, kMax)));
    } else if (p.is_array()) {
      if (p.array.empty()) bad("'procs' must name at least one processor count");
      for (const json::Value& item : p.array) {
        o.procs.push_back(static_cast<int>(require_int(item, "procs", 1, kMax)));
      }
    } else {
      bad("'procs' must be a positive integer or an array of them");
    }
  }

  if (doc.has("machine")) {
    o.machine = require_str(doc.at("machine"), "machine");
    if (o.machine != "t3d" && o.machine != "paragon") {
      bad("'machine' must be \"t3d\" or \"paragon\"");
    }
  }

  if (doc.has("config")) {
    const json::Value& c = doc.at("config");
    if (!c.is_object()) bad("'config' must be an object of integer overrides");
    for (const auto& [key, value] : c.object) {
      o.config_overrides[key] =
          require_int(value, "config." + key, -(1LL << 40), 1LL << 40);
    }
  }

  if (doc.has("run")) o.run = require_bool(doc.at("run"), "run");
  if (doc.has("plan_text")) {
    o.plan_text = require_bool(doc.at("plan_text"), "plan_text");
  }
  if (doc.has("trace")) o.trace = require_bool(doc.at("trace"), "trace");
  if (doc.has("blame")) o.blame = require_bool(doc.at("blame"), "blame");
  if (doc.has("critical_path")) {
    o.critical_path = require_bool(doc.at("critical_path"), "critical_path");
  }
  if (o.blame || o.critical_path) o.trace = true;
  if (o.trace && !o.run) bad("'trace' (or blame/critical_path) requires 'run'");
}

}  // namespace

Request parse_request(std::string_view line, const json::ParseLimits& limits) {
  json::Value doc;
  try {
    doc = json::parse(line, limits);
  } catch (const Error& e) {
    throw RequestError(ErrorCode::kBadRequest, e.what(), extract_offset(e.what()));
  }
  if (!doc.is_object()) bad("a request must be a JSON object");

  if (!doc.has("v")) bad("missing required member 'v'");
  if (require_int(doc.at("v"), "v", 0, 1LL << 30) != kProtocolVersion) {
    bad("unsupported protocol version (this server speaks v" +
        std::to_string(kProtocolVersion) + ")");
  }
  if (!doc.has("cmd")) bad("missing required member 'cmd'");
  const std::string cmd = require_str(doc.at("cmd"), "cmd");

  Request req;
  if (doc.has("id")) req.id = require_str(doc.at("id"), "id");

  static const std::vector<std::string> kCommon = {"v", "cmd", "id"};
  static const std::vector<std::string> kOptimizeOnly = {
      "bench",  "source", "experiment", "procs",
      "config", "machine", "run",       "plan_text",
      "trace",  "blame",  "critical_path"};

  if (cmd == "ping") {
    req.cmd = Request::Cmd::kPing;
  } else if (cmd == "stats") {
    req.cmd = Request::Cmd::kStats;
  } else if (cmd == "flight") {
    req.cmd = Request::Cmd::kFlight;
  } else if (cmd == "shutdown") {
    req.cmd = Request::Cmd::kShutdown;
  } else if (cmd == "optimize") {
    req.cmd = Request::Cmd::kOptimize;
  } else {
    bad("unknown cmd '" + cmd +
        "' (expected optimize, stats, flight, ping, or shutdown)");
  }

  for (const auto& [key, value] : doc.object) {
    (void)value;
    if (std::find(kCommon.begin(), kCommon.end(), key) != kCommon.end()) continue;
    if (req.cmd == Request::Cmd::kOptimize &&
        std::find(kOptimizeOnly.begin(), kOptimizeOnly.end(), key) !=
            kOptimizeOnly.end()) {
      continue;
    }
    bad("unknown member '" + key + "' for cmd '" + cmd + "'");
  }

  if (req.cmd == Request::Cmd::kOptimize) parse_optimize(doc, req.optimize);
  return req;
}

json::Value response_base(std::string_view kind, const std::string& id, int seq) {
  json::Value v = json::Value::make_object();
  v["v"] = json::Value::make_int(kProtocolVersion);
  v["kind"] = json::Value::make_str(std::string(kind));
  v["id"] = json::Value::make_str(id);
  v["seq"] = json::Value::make_int(seq);
  return v;
}

json::Value error_response(const std::string& id, ErrorCode code,
                           const std::string& message, long long offset,
                           int retry_after_ms) {
  json::Value v = response_base("error", id, 0);
  json::Value err = json::Value::make_object();
  err["code"] = json::Value::make_str(std::string(to_string(code)));
  err["message"] = json::Value::make_str(message);
  if (offset >= 0) err["offset"] = json::Value::make_int(offset);
  if (retry_after_ms >= 0) err["retry_after_ms"] = json::Value::make_int(retry_after_ms);
  v["error"] = std::move(err);
  return v;
}

}  // namespace zc::serve
