// Wire protocol for the zcomm_serve daemon: one JSON object per line in,
// one or more JSON objects per line out (a "JSON-lines" stream). The
// schema is versioned ("v": 1 on every message, both directions) and
// parsing is strict: unknown members, wrong types, missing required
// fields, and out-of-range values are rejected with a structured error
// response — the daemon never crashes on malformed input (the parser
// itself is bounded by json::ParseLimits).
//
// Requests ("cmd" selects):
//   {"v":1, "cmd":"ping", "id":...}
//   {"v":1, "cmd":"stats", "id":...}
//   {"v":1, "cmd":"flight", "id":...}   // flight-recorder dump
//   {"v":1, "cmd":"shutdown", "id":...}
//   {"v":1, "cmd":"optimize", "id":"r1",
//    "bench":"tomcatv" | "source":"<mini-ZPL>",   // exactly one
//    "experiment":"pl" | ["cc","pl"] | "all",      // default "pl"
//    "procs":16 | [4,16],                          // default [16]
//    "machine":"t3d" | "paragon",                  // default "t3d"
//    "config":{"n":64, ...},                       // config overrides
//    "run":true, "plan_text":true, "trace":false,
//    "blame":false, "critical_path":false}         // blame/cp imply trace
//
// Responses: control commands answer with a single line; an admitted
// optimize request streams, per experiment, a "plan" line, then per
// processor count a "report" line (run-report schema v3, src/driver/
// report.h) plus optional "blame" / "critical_path" lines, and finally
// one "done" line. Every line carries the request's "id" and a
// monotonically increasing "seq". Errors are
//   {"v":1, "kind":"error", "id":..., "seq":0,
//    "error":{"code":"bad_request"|"overloaded"|"shutting_down"|
//             "internal", "message":..., "offset":N?, "retry_after_ms":N?}}
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/diag.h"
#include "src/support/json.h"

namespace zc::serve {

/// Protocol version stamped on (and required of) every message.
inline constexpr int kProtocolVersion = 1;

/// Wire error codes (stable strings; see to_string).
enum class ErrorCode {
  kBadRequest,    ///< malformed JSON or invalid/unknown fields
  kOverloaded,    ///< admission queue full; retry after retry_after_ms
  kShuttingDown,  ///< daemon is draining; no new work admitted
  kInternal,      ///< unexpected server-side failure
};

[[nodiscard]] std::string_view to_string(ErrorCode code);

/// A request that failed validation: carries the wire error code and,
/// when the failure was a JSON syntax/limit error, the byte offset into
/// the request line where parsing stopped (-1 otherwise).
class RequestError : public Error {
 public:
  RequestError(ErrorCode error_code, const std::string& message,
               long long byte_offset = -1)
      : Error(message), code(error_code), offset(byte_offset) {}

  ErrorCode code;
  long long offset;
};

/// The work grid of one "optimize" request: (program) x experiments x procs.
struct OptimizeRequest {
  std::string bench;   ///< named benchmark/kernel; empty when `source` given
  std::string source;  ///< inline mini-ZPL; empty when `bench` given
  std::vector<std::string> experiments{"pl"};  ///< "all" expanded by the service
  std::vector<int> procs{16};
  std::string machine = "t3d";  ///< "t3d" | "paragon"
  std::map<std::string, long long> config_overrides;
  bool run = true;    ///< false = plan only (no simulation, no reports)
  bool plan_text = true;  ///< false drops plan_text from plan lines (cheap
                          ///< cache-warming / counting clients)
  bool trace = false;
  bool blame = false;          ///< implies trace
  bool critical_path = false;  ///< implies trace

  /// A stable one-line label for logs/metrics ("tomcatv/pl,cc/p4,p16").
  [[nodiscard]] std::string label() const;
};

struct Request {
  enum class Cmd { kPing, kStats, kFlight, kShutdown, kOptimize };

  Cmd cmd = Cmd::kPing;
  std::string id;            ///< echoed on every response line; may be empty
  OptimizeRequest optimize;  ///< meaningful iff cmd == kOptimize
};

/// Parses and strictly validates one request line. Throws RequestError
/// (code kBadRequest) on any syntax, schema, or range violation; never
/// anything else, for any input within `limits`.
[[nodiscard]] Request parse_request(std::string_view line,
                                    const json::ParseLimits& limits = {});

/// A response skeleton: {"v":1, "kind":kind, "id":id, "seq":seq}.
[[nodiscard]] json::Value response_base(std::string_view kind, const std::string& id,
                                        int seq);

/// A structured error line. `offset` attaches only when >= 0;
/// `retry_after_ms` only when >= 0 (the overload response sets it).
[[nodiscard]] json::Value error_response(const std::string& id, ErrorCode code,
                                         const std::string& message,
                                         long long offset = -1,
                                         int retry_after_ms = -1);

}  // namespace zc::serve
