#!/usr/bin/env bash
# Quick pre-commit check: configure + build + the `smoke`-labelled test
# tier (sub-50 ms unit suites; see tests/CMakeLists.txt). The full suite is
# `ctest` with no -L filter — run it before merging; this script is the
# seconds-scale inner loop.
#
#   scripts/check.sh            # build/ next to the sources
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j

# Exercise the parallel sweep path explicitly (beyond the smoke-labelled
# sweep tests): a two-worker grid through the scheduler + plan cache must
# come back clean. scripts/bench_sweep.sh is the full scaling harness.
"$BUILD_DIR"/examples/comm_explorer \
  --sweep "bench=figure1;experiment=all;procs=4" --jobs 2 > /dev/null
echo "check: smoke tier + --jobs 2 sweep OK"
