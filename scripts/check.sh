#!/usr/bin/env bash
# Quick pre-commit check: configure + build + the `smoke`-labelled test
# tier (sub-50 ms unit suites; see tests/CMakeLists.txt). The full suite is
# `ctest` with no -L filter — run it before merging; this script is the
# seconds-scale inner loop.
#
#   scripts/check.sh            # build/ next to the sources
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j

# Exercise the parallel sweep path explicitly (beyond the smoke-labelled
# sweep tests): a two-worker grid through the scheduler + plan cache must
# come back clean, with the per-worker timeline summary on. scripts/
# bench_sweep.sh is the full scaling harness.
"$BUILD_DIR"/examples/comm_explorer \
  --sweep "bench=figure1;experiment=all;procs=4" --jobs 2 --timeline 2>/dev/null \
  | grep -q 'worker 0' \
  || { echo "check: FAILED — sweep timeline summary missing"; exit 1; }

# Timeline heatmap end to end: a traced run with the windowed telemetry
# sink attached must print conserved channel totals.
"$BUILD_DIR"/examples/comm_explorer \
  --bench figure1 --experiment pl --procs 4 --timeline=16 \
  | grep -q 'totals (s):' \
  || { echo "check: FAILED — timeline heatmap missing its totals line"; exit 1; }

# Scale probe: one table benchmark on a 1024-processor partition under the
# event-driven engine core, diffed against the 64-processor run. The
# partition-invariant counts (static, dynamic, reductions) must be
# identical, the message count must scale up with the mesh, and the
# converged residual must hold (the partition only changes the FP
# summation association, never the result): "counts scale, checksums
# hold". The bitwise event-vs-lockstep contract is the engine_event_test
# suite's job; this probes the report surface end to end at scale.
run_scale() {
  "$BUILD_DIR"/examples/zplc --builtin tomcatv --level=pl --procs="$1" \
    --set n=40 --set iters=4
}
python3 - "$(run_scale 64)" "$(run_scale 1024)" <<'PY' \
  || { echo "check: FAILED — 1024-processor scale probe"; exit 1; }
import re, sys
r64, r1k = sys.argv[1], sys.argv[2]
def count(t, k): return int(re.search(k + r":\s+([0-9]+)", t).group(1))
def messages(t): return int(re.search(r"messages/bytes:\s+([0-9]+)", t).group(1))
def resid(t): return float(re.search(r"resid\s+=\s+([-0-9.e+]+)", t).group(1))
assert count(r1k, "static count") == count(r64, "static count"), "static count drifted"
assert count(r1k, "dynamic count") == count(r64, "dynamic count"), "dynamic count drifted"
assert count(r1k, "reductions") == count(r64, "reductions"), "reduction count drifted"
assert messages(r1k) > messages(r64), "messages did not scale with the mesh"
a, b = resid(r64), resid(r1k)
assert abs(a - b) <= 1e-6 * max(1.0, abs(a)), f"residual moved: {a} vs {b}"
print(f"scale probe: counts scale ({messages(r64)} -> {messages(r1k)} messages), residual holds")
PY

# Perf-archive round trip: record deterministic run reports into a scratch
# archive, require the regression gate to pass on a like-for-like sample
# and to fail on an injected 2x slowdown, then render the dashboard and
# require it to be genuinely self-contained (inline SVG, zero external
# fetches). scripts/bench_*.sh append to the real
# ${ARCHIVE:-perf_archive.jsonl}; this probes the machinery on a temp file.
ARC_DIR="$(mktemp -d)"
ARC="$ARC_DIR/archive.jsonl"
"$BUILD_DIR"/examples/comm_explorer --bench figure1 --experiment pl --procs 4 \
  --report "$ARC_DIR/r.json" >/dev/null
"$BUILD_DIR"/examples/zcomm_bench record --archive="$ARC" --now=1700000000 \
  "$ARC_DIR/r.json" "$ARC_DIR/r.json" >/dev/null
"$BUILD_DIR"/examples/zcomm_bench trend --archive="$ARC" \
  | grep -q 'execution_time_seconds' \
  || { echo "check: FAILED — archive trend missing its series"; exit 1; }
"$BUILD_DIR"/examples/zcomm_bench check --archive="$ARC" "$ARC_DIR/r.json" >/dev/null \
  || { echo "check: FAILED — archive gate rejected a like-for-like sample"; exit 1; }
if "$BUILD_DIR"/examples/zcomm_bench check --archive="$ARC" --scale=2 \
    "$ARC_DIR/r.json" >/dev/null; then
  echo "check: FAILED — archive gate missed an injected 2x slowdown"; exit 1
fi
"$BUILD_DIR"/examples/zcomm_bench dashboard --archive="$ARC" \
  --out="$ARC_DIR/dash.html" >/dev/null
grep -q '<svg' "$ARC_DIR/dash.html" \
  || { echo "check: FAILED — dashboard missing its inline sparklines"; exit 1; }
if grep -Eq '(src|href)="https?://' "$ARC_DIR/dash.html"; then
  echo "check: FAILED — dashboard is not self-contained"; exit 1
fi
rm -rf "$ARC_DIR"

# Observability smoke: launch the daemon with the HTTP plane on an
# ephemeral port, scrape /metrics live, inject a slow request through the
# debug-sleep seam, and require the flight recorder to have captured it
# with its phase attributed. The deeper grammar/drain assertions live in
# the serve_observability_cli ctest; this is the seconds-scale liveness
# probe.
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
"$BUILD_DIR"/examples/zcomm_serve \
  --socket "$OBS_DIR/s.sock" --http 0 --jobs 1 --flight 4 --slow-ms 1 \
  --debug-sleep-ms 20 --log-file "$OBS_DIR/daemon.log" &
OBS_PID=$!
trap 'kill "$OBS_PID" 2>/dev/null || true; rm -rf "$OBS_DIR"' EXIT
OBS_PORT=
for _ in $(seq 1 100); do
  OBS_PORT="$(grep -oE 'http_port=[0-9]+' "$OBS_DIR/daemon.log" 2>/dev/null \
    | head -n1 | cut -d= -f2 || true)"
  [ -n "$OBS_PORT" ] && [ -S "$OBS_DIR/s.sock" ] && break
  sleep 0.05
done
[ -n "$OBS_PORT" ] || { echo "check: FAILED — daemon never published http_port"; exit 1; }
printf '{"v":1,"cmd":"optimize","id":"chk","bench":"jacobi","experiment":"pl","procs":4}\n' \
  | "$BUILD_DIR"/examples/serve_client --socket "$OBS_DIR/s.sock" \
  | grep -q '"kind":"done"'
http_get() {
  exec 3<>"/dev/tcp/127.0.0.1/$1"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$2" >&3
  cat <&3
  exec 3<&- 3>&-
}
http_get "$OBS_PORT" /metrics | grep -qE '^serve_requests [1-9]' \
  || { echo "check: FAILED — /metrics missing serve_requests"; exit 1; }
http_get "$OBS_PORT" /flight | grep -q 'debug_sleep' \
  || { echo "check: FAILED — flight recorder missing the slow request"; exit 1; }
http_get "$OBS_PORT" /timeseries | grep -q 'zc-wall-timeline' \
  || { echo "check: FAILED — /timeseries missing the live series"; exit 1; }
kill -TERM "$OBS_PID"
wait "$OBS_PID" || { echo "check: FAILED — daemon drain exited non-zero"; exit 1; }
echo "check: smoke tier + --jobs 2 sweep + timeline + 1024-proc scale + perf archive + observability probe OK"
