#!/usr/bin/env bash
# Quick pre-commit check: configure + build + the `smoke`-labelled test
# tier (sub-50 ms unit suites; see tests/CMakeLists.txt). The full suite is
# `ctest` with no -L filter — run it before merging; this script is the
# seconds-scale inner loop.
#
#   scripts/check.sh            # build/ next to the sources
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j
