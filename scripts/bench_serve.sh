#!/usr/bin/env bash
# Serve-throughput benchmark: builds, then runs bench_serve_throughput —
# closed-loop clients driving the zcomm_serve engine in-process across a
# jobs x {cold,warm} plan-cache grid in both plan-only and full-run modes —
# and leaves the machine-readable result in BENCH_serve_throughput.json at
# the repo root.
#
#   scripts/bench_serve.sh                 # defaults: procs=64 grid
#   scripts/bench_serve.sh --procs=16      # smaller simulated machine
#   BUILD_DIR=out scripts/bench_serve.sh
#
# Absolute req/s is hardware-dependent and reported as-is (a single-core
# container shows no jobs scaling, and the harness says so). Exit status is
# the acceptance verdict: warm throughput >= 3x cold in plan-only mode at
# every jobs level, observability overhead (info logging + flight recorder)
# <= 5% on the warm plan-mode path, and zero failed requests.
# Every run is also gated against and appended to the perf-history archive
# (${ARCHIVE:-perf_archive.jsonl}): the like-for-like verdict against this
# host class's history is printed but never changes the exit status.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
ARCHIVE="${ARCHIVE:-perf_archive.jsonl}"

# Stamp every envelope with the revision that produced it, so archived
# samples stay attributable; +dirty marks uncommitted tracked edits.
GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || true)"
if [ -n "$GIT_SHA" ] && ! git diff-index --quiet HEAD -- 2>/dev/null; then
  GIT_SHA="${GIT_SHA}+dirty"
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target bench_serve_throughput zcomm_bench

"$BUILD_DIR"/bench/bench_serve_throughput \
  --bench-json=BENCH_serve_throughput.json \
  ${GIT_SHA:+--git-sha="$GIT_SHA"} "$@"

echo "--- perf archive ($ARCHIVE) ---"
"$BUILD_DIR"/examples/zcomm_bench check --archive="$ARCHIVE" \
  BENCH_serve_throughput.json || true
"$BUILD_DIR"/examples/zcomm_bench record --archive="$ARCHIVE" \
  BENCH_serve_throughput.json
