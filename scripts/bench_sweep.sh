#!/usr/bin/env bash
# Sweep-scheduler scaling benchmark: builds, then runs bench_sweep_scaling —
# the fig07 program grid executed three ways (legacy serial loop, scheduler
# at --jobs=1, scheduler at --jobs=N) with bit-identity checks between all
# three — and leaves the machine-readable result in BENCH_sweep_scaling.json
# at the repo root.
#
#   scripts/bench_sweep.sh                 # defaults: --jobs=4 comparison
#   scripts/bench_sweep.sh --jobs=8        # wider fan-out
#   scripts/bench_sweep.sh --procs=16      # bigger simulated machine per run
#   BUILD_DIR=out scripts/bench_sweep.sh
#
# The speedup field reports what the host actually delivered: on a
# single-core container the threaded run cannot beat serial and the harness
# says so instead of inventing a number. Exit status is the bit-identity
# verdict, never the speedup.
#
# Every run is also gated against and appended to the perf-history archive
# (${ARCHIVE:-perf_archive.jsonl}): the like-for-like verdict against this
# host class's history is printed but never changes the exit status —
# zcomm_bench check is the enforcing gate when you want one.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
ARCHIVE="${ARCHIVE:-perf_archive.jsonl}"

# Stamp every envelope with the revision that produced it, so archived
# samples stay attributable; +dirty marks uncommitted tracked edits.
GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || true)"
if [ -n "$GIT_SHA" ] && ! git diff-index --quiet HEAD -- 2>/dev/null; then
  GIT_SHA="${GIT_SHA}+dirty"
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target bench_sweep_scaling zcomm_bench

"$BUILD_DIR"/bench/bench_sweep_scaling \
  --bench-json=BENCH_sweep_scaling.json \
  ${GIT_SHA:+--git-sha="$GIT_SHA"} "$@"

echo "--- perf archive ($ARCHIVE) ---"
"$BUILD_DIR"/examples/zcomm_bench check --archive="$ARCHIVE" \
  BENCH_sweep_scaling.json || true
"$BUILD_DIR"/examples/zcomm_bench record --archive="$ARCHIVE" \
  BENCH_sweep_scaling.json
