// zplc — the command-line driver: compile a mini-ZPL file, optionally dump
// the communication plan, and run it on a simulated machine.
//
// Usage:
//   zplc FILE.zpl [options]
//   zplc --builtin NAME [options]     (tomcatv | swm | simple | sp |
//                                      jacobi | life | heat3d)
// Options:
//   --level=baseline|rr|cc|pl     optimization level (default pl)
//   --heuristic=maxcomb|maxlat|nested|hybrid
//   --machine=t3d|paragon         (default t3d)
//   --library=pvm|shmem|nx|nx-async|nx-callback
//   --procs=N                     (default 64)
//   --set NAME=VALUE              config override (repeatable)
//   --interblock                  enable cross-block redundancy removal
//   --dump-plan                   print the annotated SPMD listing and exit
//   --dump-ir                     print the parsed program and exit
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"
#include "src/support/str.h"
#include "src/zir/printer.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " FILE.zpl | --builtin NAME [options]\n"
            << "  --level=baseline|rr|cc|pl   --heuristic=maxcomb|maxlat|nested|hybrid\n"
            << "  --machine=t3d|paragon       --library=pvm|shmem|nx|nx-async|nx-callback\n"
            << "  --procs=N                   --set NAME=VALUE\n"
            << "  --dump-plan                 --dump-ir\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw zc::Error("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  std::string source;
  std::string source_name;
  comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kPL);
  sim::RunConfig cfg;
  bool dump_plan = false;
  bool dump_ir = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--builtin") {
        if (++i >= argc) usage(argv[0]);
        source_name = argv[i];
        try {
          source = std::string(programs::benchmark(source_name).source);
        } catch (const Error&) {
          source = std::string(programs::kernel_source(source_name));
        }
      } else if (str::starts_with(arg, "--level=")) {
        const std::string v = arg.substr(8);
        if (v == "baseline") opts = comm::OptOptions::for_level(comm::OptLevel::kBaseline);
        else if (v == "rr") opts = comm::OptOptions::for_level(comm::OptLevel::kRR);
        else if (v == "cc") opts = comm::OptOptions::for_level(comm::OptLevel::kCC);
        else if (v == "pl") opts = comm::OptOptions::for_level(comm::OptLevel::kPL);
        else usage(argv[0]);
      } else if (str::starts_with(arg, "--heuristic=")) {
        const std::string v = arg.substr(12);
        if (v == "maxcomb") opts.heuristic = comm::CombineHeuristic::kMaxCombining;
        else if (v == "maxlat") opts.heuristic = comm::CombineHeuristic::kMaxLatency;
        else if (v == "nested") opts.heuristic = comm::CombineHeuristic::kNested;
        else if (v == "hybrid") opts.heuristic = comm::CombineHeuristic::kHybrid;
        else usage(argv[0]);
      } else if (str::starts_with(arg, "--machine=")) {
        const std::string v = arg.substr(10);
        if (v == "t3d") cfg.machine = machine::t3d_model();
        else if (v == "paragon") cfg.machine = machine::paragon_model();
        else usage(argv[0]);
      } else if (str::starts_with(arg, "--library=")) {
        const std::string v = arg.substr(10);
        if (v == "pvm") cfg.library = ironman::CommLibrary::kPVM;
        else if (v == "shmem") cfg.library = ironman::CommLibrary::kSHMEM;
        else if (v == "nx") cfg.library = ironman::CommLibrary::kNXSync;
        else if (v == "nx-async") cfg.library = ironman::CommLibrary::kNXAsync;
        else if (v == "nx-callback") cfg.library = ironman::CommLibrary::kNXCallback;
        else usage(argv[0]);
      } else if (str::starts_with(arg, "--procs=")) {
        cfg.procs = std::atoi(arg.c_str() + 8);
      } else if (arg == "--set") {
        if (++i >= argc) usage(argv[0]);
        const auto parts = str::split(argv[i], '=');
        if (parts.size() != 2) usage(argv[0]);
        cfg.config_overrides[parts[0]] = std::atoll(parts[1].c_str());
      } else if (arg == "--interblock") {
        opts.inter_block = true;
      } else if (arg == "--dump-plan") {
        dump_plan = true;
      } else if (arg == "--dump-ir") {
        dump_ir = true;
      } else if (!arg.empty() && arg[0] != '-') {
        source_name = arg;
        source = read_file(arg);
      } else {
        usage(argv[0]);
      }
    }
    if (source.empty()) usage(argv[0]);

    // Default to a machine consistent with the chosen library.
    if (!machine::library_available(cfg.machine.kind, cfg.library)) {
      cfg.machine = cfg.library == ironman::CommLibrary::kPVM ||
                            cfg.library == ironman::CommLibrary::kSHMEM
                        ? machine::t3d_model()
                        : machine::paragon_model();
    }

    const zir::Program program = parser::parse_program(source);
    if (dump_ir) {
      std::cout << zir::to_source(program);
      return 0;
    }
    const comm::CommPlan plan = comm::plan_communication(program, opts);
    if (dump_plan) {
      std::cout << comm::to_string(plan, program);
      std::cout << "\nstatic communication count: " << plan.static_count() << "\n";
      return 0;
    }

    const sim::RunResult r = sim::run_program(program, plan, cfg);
    std::cout << "program:        " << program.name() << " (" << source_name << ")\n";
    std::cout << "machine:        " << cfg.machine.name << ", " << cfg.procs
              << " procs (mesh " << r.mesh.rows << "x" << r.mesh.cols << "), "
              << ironman::to_string(cfg.library) << "\n";
    std::cout << "heuristic:      " << comm::to_string(opts.heuristic) << "\n";
    std::cout << "static count:   " << plan.static_count() << "\n";
    std::cout << "dynamic count:  " << r.dynamic_count << "\n";
    std::cout << "messages/bytes: " << r.total_messages << " / "
              << str::with_commas(r.total_bytes) << "\n";
    std::cout << "reductions:     " << r.reduction_count << "\n";
    std::cout << "execution time: " << str::format_f(r.elapsed_seconds, 6) << " s (simulated)\n";
    std::cout << "scalars:\n";
    for (const auto& [name, value] : r.scalars) {
      std::cout << "  " << str::pad_right(name, 10) << " = " << value << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "zplc: error: " << e.what() << "\n";
    return 1;
  }
}
