// report_diff: compares two zcomm run reports (comm_explorer --report, or
// driver::run_report) and flags regressions. "Old" is the baseline, "new"
// is the candidate; a regression is a higher static or dynamic
// communication count, or an execution time more than --time-tolerance
// above the baseline.
//
//   report_diff old.json new.json
//   report_diff --require-strict=static_count baseline.json rr.json
//   report_diff --json old.json new.json > diff.json
//
// The comparison itself lives in driver::diff_run_reports, so --json emits
// the same verdicts the text path prints (round-trip-tested by
// tests/report_schema_test.cpp).
//
// Exit status: 0 = no regression, 1 = regression (or a --require-strict
// field that failed to strictly improve), 2 = usage or I/O error. Wired
// into ctest to assert rr strictly reduces SWM's static count.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/driver/report.h"
#include "src/support/diag.h"
#include "src/support/io.h"
#include "src/support/json.h"

namespace {

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: report_diff [options] <old.json> <new.json>\n"
      "  --time-tolerance <frac>      allowed execution-time growth before\n"
      "                               it counts as a regression (default 0.05)\n"
      "  --require-strict=<field>     additionally require new.<field> to be\n"
      "                               strictly lower than old.<field>\n"
      "                               (e.g. static_count, dynamic_count)\n"
      "  --json                       emit the comparison as JSON on stdout\n"
      "                               instead of the text table\n"
      "exit status: 0 ok, 1 regression, 2 usage or I/O error\n";
  std::exit(code);
}

zc::json::Value load_report(const std::string& path) {
  const zc::json::Value doc = zc::json::parse(zc::io::read_text_file(path));
  if (!doc.has("schema") || doc.at("schema").string != "zcomm-run-report") {
    throw zc::Error(path + ": not a zcomm run report (missing/wrong \"schema\")");
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  double time_tolerance = 0.05;
  std::vector<std::string> strict_fields;
  std::vector<std::string> paths;
  bool as_json = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--time-tolerance") {
      if (i + 1 >= args.size()) usage(2);
      time_tolerance = std::strtod(args[++i].c_str(), nullptr);
    }
    else if (a.rfind("--require-strict=", 0) == 0) {
      strict_fields.push_back(a.substr(std::string("--require-strict=").size()));
    }
    else if (a == "--json") as_json = true;
    else if (a.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << a << "\n";
      usage(2);
    }
    else paths.push_back(a);
  }
  if (paths.size() != 2) usage(2);

  try {
    const zc::json::Value before = load_report(paths[0]);
    const zc::json::Value after = load_report(paths[1]);
    const zc::json::Value diff =
        zc::driver::diff_run_reports(before, after, time_tolerance, strict_fields);
    const bool failed = diff.at("regressed").boolean;

    if (as_json) {
      std::cout << diff.dump() << "\n";
      return failed ? 1 : 0;
    }

    std::cout << "report_diff: " << paths[0] << " -> " << paths[1] << "\n";
    for (const zc::json::Value& f : diff.at("fields").array) {
      std::cout << "  " << f.at("name").string << ": " << f.at("before").number << " -> "
                << f.at("after").number << " (delta " << f.at("delta").number << ")"
                << (f.at("regressed").boolean ? "  REGRESSION" : "") << "\n";
    }
    for (const zc::json::Value& f : diff.at("strict").array) {
      std::cout << "  require-strict " << f.at("name").string << ": " << f.at("before").number
                << " -> " << f.at("after").number
                << (f.at("improved").boolean ? "  improved" : "  NOT STRICTLY IMPROVED")
                << "\n";
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "report_diff: " << e.what() << "\n";
    return 2;
  }
}
