// report_diff: compares two zcomm run reports (comm_explorer --report, or
// driver::run_report) and flags regressions. "Old" is the baseline, "new"
// is the candidate; a regression is a higher static or dynamic
// communication count, or an execution time more than --time-tolerance
// above the baseline.
//
//   report_diff old.json new.json
//   report_diff --require-strict=static_count baseline.json rr.json
//   report_diff --json old.json new.json > diff.json
//   report_diff --perf-budget 20 profiled_old.json profiled_new.json
//
// With --perf-budget <pct> the reports must carry a host_profile block
// (comm_explorer --profile --report ...) and the tool additionally gates
// the toolchain's own wall time: any span path (or the total) more than
// <pct> percent — plus a 1 ms absolute noise floor — slower than the
// baseline is a regression. This is the perf gate for the toolchain
// itself, as opposed to the simulated-time fields above.
//
// The comparison itself lives in driver::diff_run_reports /
// driver::perf_budget_diff, so --json emits the same verdicts the text
// path prints (round-trip-tested by tests/report_schema_test.cpp).
//
// Exit status: 0 = no regression, 1 = regression (or a --require-strict
// field that failed to strictly improve), 2 = usage or I/O error. Wired
// into ctest to assert rr strictly reduces SWM's static count.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/driver/report.h"
#include "src/support/diag.h"
#include "src/support/io.h"
#include "src/support/json.h"

namespace {

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: report_diff [options] <old.json> <new.json>\n"
      "  --time-tolerance <frac>      allowed execution-time growth before\n"
      "                               it counts as a regression (default 0.05)\n"
      "  --require-strict=<field>     additionally require new.<field> to be\n"
      "                               strictly lower than old.<field>\n"
      "                               (e.g. static_count, dynamic_count)\n"
      "  --json                       emit the comparison as JSON on stdout\n"
      "                               instead of the text table\n"
      "  --perf-budget <pct>          also gate host wall time: fail when a\n"
      "                               host_profile span path (or the wall\n"
      "                               total) is more than <pct> percent slower\n"
      "                               than the baseline (plus a 1 ms floor);\n"
      "                               both reports need a host_profile block\n"
      "  --scale-after-host <f>       multiply the new report's host_profile\n"
      "                               times by <f> before comparing (testing\n"
      "                               aid: makes the perf gate deterministic\n"
      "                               in CI by injecting a known slowdown)\n"
      "exit status: 0 ok, 1 regression, 2 usage or I/O error\n";
  std::exit(code);
}

/// --scale-after-host: scales every host_profile duration in-place.
void scale_host_times(zc::json::Value& v, double factor) {
  if (v.has("wall_seconds")) v["wall_seconds"].number *= factor;
  if (v.has("total_seconds")) v["total_seconds"].number *= factor;
  if (v.has("self_seconds")) v["self_seconds"].number *= factor;
  if (v.has("spans")) {
    for (zc::json::Value& s : v["spans"].array) scale_host_times(s, factor);
  }
  if (v.has("children")) {
    for (zc::json::Value& s : v["children"].array) scale_host_times(s, factor);
  }
}

zc::json::Value load_report(const std::string& path) {
  const zc::json::Value doc = zc::json::parse(zc::io::read_text_file(path));
  if (!doc.has("schema") || doc.at("schema").string != "zcomm-run-report") {
    throw zc::Error(path + ": not a zcomm run report (missing/wrong \"schema\")");
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  double time_tolerance = 0.05;
  std::vector<std::string> strict_fields;
  std::vector<std::string> paths;
  bool as_json = false;
  bool perf_budget_requested = false;
  double perf_budget_pct = 0.0;
  double scale_after_host = 1.0;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--time-tolerance") {
      if (i + 1 >= args.size()) usage(2);
      time_tolerance = std::strtod(args[++i].c_str(), nullptr);
    }
    else if (a.rfind("--require-strict=", 0) == 0) {
      strict_fields.push_back(a.substr(std::string("--require-strict=").size()));
    }
    else if (a == "--json") as_json = true;
    else if (a == "--perf-budget") {
      if (i + 1 >= args.size()) usage(2);
      perf_budget_requested = true;
      perf_budget_pct = std::strtod(args[++i].c_str(), nullptr);
    }
    else if (a == "--scale-after-host") {
      if (i + 1 >= args.size()) usage(2);
      scale_after_host = std::strtod(args[++i].c_str(), nullptr);
    }
    else if (a.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << a << "\n";
      usage(2);
    }
    else paths.push_back(a);
  }
  if (paths.size() != 2) usage(2);

  try {
    const zc::json::Value before = load_report(paths[0]);
    zc::json::Value after = load_report(paths[1]);
    if (scale_after_host != 1.0 && after.has("host_profile")) {
      scale_host_times(after["host_profile"], scale_after_host);
    }
    zc::json::Value diff =
        zc::driver::diff_run_reports(before, after, time_tolerance, strict_fields);
    bool failed = diff.at("regressed").boolean;
    if (perf_budget_requested) {
      diff["perf_budget"] = zc::driver::perf_budget_diff(before, after, perf_budget_pct);
      failed = failed || diff.at("perf_budget").at("regressed").boolean;
    }

    if (as_json) {
      std::cout << diff.dump() << "\n";
      return failed ? 1 : 0;
    }

    std::cout << "report_diff: " << paths[0] << " -> " << paths[1] << "\n";
    for (const zc::json::Value& f : diff.at("fields").array) {
      std::cout << "  " << f.at("name").string << ": " << f.at("before").number << " -> "
                << f.at("after").number << " (delta " << f.at("delta").number << ")"
                << (f.at("regressed").boolean ? "  REGRESSION" : "") << "\n";
    }
    for (const zc::json::Value& f : diff.at("strict").array) {
      if (!f.at("comparable").boolean) {
        std::cout << "  require-strict " << f.at("name").string
                  << ": not present in both reports  NOT COMPARABLE\n";
        continue;
      }
      std::cout << "  require-strict " << f.at("name").string << ": " << f.at("before").number
                << " -> " << f.at("after").number
                << (f.at("improved").boolean ? "  improved" : "  NOT STRICTLY IMPROVED")
                << "\n";
    }
    for (const zc::json::Value& b : diff.at("optional_blocks").array) {
      if (b.at("before").boolean != b.at("after").boolean) {
        std::cout << "  note: block '" << b.at("name").string << "' only in the "
                  << (b.at("before").boolean ? "old" : "new") << " report\n";
      }
    }
    if (perf_budget_requested) {
      const zc::json::Value& pb = diff.at("perf_budget");
      const zc::json::Value& wall = pb.at("wall");
      std::cout << "  perf-budget " << perf_budget_pct << "%: host wall "
                << wall.at("before").number << "s -> " << wall.at("after").number << "s"
                << (wall.at("regressed").boolean ? "  REGRESSION" : "") << "\n";
      for (const zc::json::Value& s : pb.at("spans").array) {
        if (!s.at("regressed").boolean) continue;
        std::cout << "    span " << s.at("path").string << ": " << s.at("before").number
                  << "s -> " << s.at("after").number << "s  REGRESSION\n";
      }
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "report_diff: " << e.what() << "\n";
    return 2;
  }
}
