// Communication explorer: shows what the optimizer actually does to a
// program — as annotated SPMD listings in the style of the paper's
// Figure 1, as per-decision provenance (--explain), as machine-readable
// run reports (--report, diffable with report_diff), and (with --trace) as
// Chrome trace-event timelines of the simulated run, one track per
// processor plus wire lanes per channel.
//
// Build & run:  cmake --build build && ./build/examples/comm_explorer
//
//   comm_explorer                      # the Figure 1 listings, every level
//   comm_explorer --explain tomcatv    # why each rr/cc/pl decision was made
//   comm_explorer --report r.json      # one JSON run report (see report_diff)
//   comm_explorer --trace pl.json      # trace TOMCATV under `pl`, 16 procs
//   comm_explorer --bench swm --experiment "pl with shmem" --trace-stats
//   comm_explorer --experiment all --trace t.json --trace-stats-csv s.csv
//
// Open the JSON in https://ui.perfetto.dev or chrome://tracing; pipelined
// runs show the wire lanes' transfer spans overlapping the processors'
// compute spans, with the exposed remainder visible as "wait DN" slices.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/blame.h"
#include "src/analysis/critpath.h"
#include "src/analysis/diff.h"
#include "src/comm/optimizer.h"
#include "src/driver/driver.h"
#include "src/driver/report.h"
#include "src/exec/sweep.h"
#include "src/parser/parser.h"
#include "src/prof/prof.h"
#include "src/programs/programs.h"
#include "src/report/passlog.h"
#include "src/support/io.h"
#include "src/support/metrics.h"
#include "src/trace/chrome.h"
#include "src/trace/stats.h"
#include "src/tseries/render.h"
#include "src/tseries/tseries.h"

namespace {

// The paper's Figure 1 program, plus a window structure that distinguishes
// the combining heuristics (Figure 2).
constexpr std::string_view kSource = R"zpl(
program figure1;

config n : integer = 8;

region R = [1..n, 1..n];
region RB = [1..n, 1..n+1];   -- one halo column so @east stays in bounds

direction east = [0, 1];

var A, B, C, D, E, U : [RB] double;

procedure main() {
  [R] B := Index1 * 0.5;     -- B is modified here ...
  [R] A := B@east;           -- ... so B's slice is communicated here
  [R] C := B@east;           -- redundant: B unchanged since the last transfer
  [R] D := E@east;           -- combinable with B's communication
  [R] U := A + D;
  [R] C := U@east + E@east;  -- E redundant; U nests differently
}
)zpl";

void show(const zc::zir::Program& program, const std::string& title,
          const zc::comm::OptOptions& opts) {
  const zc::comm::CommPlan plan = zc::comm::plan_communication(program, opts);
  std::cout << "== " << title << " (" << plan.static_count() << " communications) ==\n";
  std::cout << zc::comm::to_string(plan, program) << "\n";
}

void show_listings(const zc::zir::Program& program) {
  using namespace zc;
  show(program, "baseline: message vectorization only (Figure 1a)",
       comm::OptOptions::for_level(comm::OptLevel::kBaseline));
  show(program, "rr: + redundant communication removal (Figure 1b)",
       comm::OptOptions::for_level(comm::OptLevel::kRR));
  show(program, "cc: + communication combination (Figure 1c)",
       comm::OptOptions::for_level(comm::OptLevel::kCC));
  show(program, "pl: + communication pipelining (Figure 1d)",
       comm::OptOptions::for_level(comm::OptLevel::kPL));

  comm::OptOptions maxlat = comm::OptOptions::for_level(comm::OptLevel::kPL);
  maxlat.heuristic = comm::CombineHeuristic::kMaxLatency;
  show(program, "pl, combining for maximum latency hiding (Figure 2c)", maxlat);

  comm::OptOptions hybrid = comm::OptOptions::for_level(comm::OptLevel::kPL);
  hybrid.heuristic = comm::CombineHeuristic::kHybrid;
  show(program, "pl, hybrid heuristic (the paper's future-work suggestion)", hybrid);

  std::cout << "Reading the listings: SR lines that moved up relative to their DN show\n"
               "pipelining; multiple arrays in one call show combining; '-- redundant'\n"
               "annotations mark transfers removed by rr.\n";
}

struct TraceOptions {
  std::string bench = "tomcatv";  // or "figure1"
  std::string experiment = "pl";  // or "all"
  int procs = 16;
  std::string trace_path;        // --trace <out.json>
  bool print_stats = false;      // --trace-stats
  std::string stats_csv_path;    // --trace-stats-csv <out.csv>
  bool trace_requested = false;
  bool explain = false;          // --explain [bench]
  std::string report_path;       // --report <out.json>
  bool print_metrics = false;    // --metrics
  bool blame = false;            // --blame
  bool critical_path = false;    // --critical-path
  std::string attribute_vs;      // --attribute-vs <experiment>
  int top = 20;                  // --top <N> rows in attribution tables
  bool profile = false;          // --profile: print the host span tree
  std::string profile_folded_path;  // --profile-folded <out>
  std::string profile_chrome_path;  // --profile-chrome <out>
  std::string sweep_spec;        // --sweep <grid-spec>
  int jobs = 1;                  // --jobs <N>, 0 = hardware concurrency
  bool jobs_given = false;
  bool timeline = false;         // --timeline[=<windows>]: print the heatmap
  int timeline_windows = 64;
  std::string timeline_csv_path;   // --timeline-csv <out.csv>
  std::string timeline_json_path;  // --timeline-json <out.json>

  [[nodiscard]] bool profile_requested() const {
    return profile || !profile_folded_path.empty() || !profile_chrome_path.empty();
  }
  [[nodiscard]] bool timeline_requested() const {
    return timeline || !timeline_csv_path.empty() || !timeline_json_path.empty();
  }
  [[nodiscard]] bool run_requested() const {
    return trace_requested || explain || !report_path.empty() || print_metrics ||
           profile_requested() || timeline_requested();
  }
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: comm_explorer [options]\n"
      "  (no options)                 print the Figure 1 annotated listings\n"
      "  --bench <name>               figure1 | tomcatv | swm | simple | sp\n"
      "                               (default tomcatv; test-scale configs)\n"
      "  --experiment <name>          a Figure 9 experiment name, or 'all'\n"
      "                               (default pl)\n"
      "  --procs <N>                  simulated processors (default 16)\n"
      "  --explain [bench]            print every optimizer decision with\n"
      "                               source-block provenance (rr kills with\n"
      "                               their covering transfer, cc merges with\n"
      "                               heuristic and size, pl hoist distances)\n"
      "  --report <out.json>          run and write a machine-readable run\n"
      "                               report (compare two with report_diff)\n"
      "  --metrics                    print the process metrics registry\n"
      "  --trace <out.json>           run and export a Chrome trace (open in\n"
      "                               Perfetto / chrome://tracing)\n"
      "  --trace-stats                print wait/CPU, exposed vs. overlapped\n"
      "                               wire time, channels, size histogram\n"
      "  --trace-stats-csv <out.csv>  write the same stats as name,value CSV\n"
      "  --blame                      per-transfer time attribution: each\n"
      "                               communication's wait/cpu split and its\n"
      "                               exposed vs. overlapped wire time\n"
      "  --critical-path              walk the run's longest dependence chain\n"
      "                               and print per-transfer path time + slack\n"
      "  --attribute-vs <experiment>  run <experiment> too and attribute the\n"
      "                               exposed-overhead delta to individual\n"
      "                               optimizer decisions (rr/cc/pl)\n"
      "  --top <N>                    rows shown in attribution tables (20)\n"
      "  --profile                    profile the toolchain itself (host wall\n"
      "                               time, not simulated time) and print the\n"
      "                               hierarchical span tree; reports written\n"
      "                               in the same run gain a host_profile\n"
      "                               block (gate with report_diff\n"
      "                               --perf-budget)\n"
      "  --profile-folded <out.txt>   write the host profile as folded stacks\n"
      "                               (pipe into flamegraph.pl)\n"
      "  --profile-chrome <out.json>  write the host span timeline as a Chrome\n"
      "                               trace; combined with the simulated\n"
      "                               tracks when --trace* is also active\n"
      "  --sweep <grid-spec>          run a whole grid of configurations\n"
      "                               through the sweep scheduler. Spec is\n"
      "                               ';'-separated key=v1,v2 lists:\n"
      "                                 bench=tomcatv,swm;experiment=all;\n"
      "                                 procs=4,16;repeat=2\n"
      "                               Each source parses once, each distinct\n"
      "                               (program, options) plans once (plan\n"
      "                               cache), results print in submission\n"
      "                               order regardless of scheduling\n"
      "  --jobs <N>                   worker contexts for --sweep (default 1\n"
      "                               = serial; 0 = hardware concurrency).\n"
      "                               Any N produces bit-identical results\n"
      "  --timeline[=<windows>]       windowed time-series telemetry (default\n"
      "                               64 windows, bounded memory at any run\n"
      "                               length). Experiments: per-processor\n"
      "                               utilization heatmap over simulated time\n"
      "                               (cpu/wait/wire/compute/barrier; totals\n"
      "                               reconcile exactly with --trace-stats).\n"
      "                               With --sweep: per-worker busy/steal/\n"
      "                               latency series plus live progress on\n"
      "                               stderr\n"
      "  --timeline-csv <out.csv>     write the windowed series as CSV\n"
      "                               (experiments mode)\n"
      "  --timeline-json <out.json>   write the windowed series as JSON\n";
  std::exit(code);
}

/// "pl with shmem" -> "pl-with-shmem" for per-experiment file names.
std::string slug(const std::string& name) {
  std::string s = name;
  for (char& c : s) {
    if (c == ' ') c = '-';
  }
  return s;
}

/// trace.json + "pl with shmem" -> trace.pl-with-shmem.json
std::string with_experiment_suffix(const std::string& path, const std::string& experiment) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + slug(experiment);
  }
  return path.substr(0, dot) + "." + slug(experiment) + path.substr(dot);
}

/// Splits "a,b,c" into its comma-separated parts (no empties).
std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t comma = s.find(',', at);
    const std::string part = s.substr(at, comma == std::string::npos ? comma : comma - at);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

// One-line reminder of the accepted --sweep grammar, printed with every
// spec diagnostic so a typo never strands the user in --help.
void print_sweep_usage() {
  std::cerr << "usage: --sweep \"bench=tomcatv,swm;experiment=pl,cc|all;"
               "procs=4,16;repeat=2\" (keys: bench, experiment, procs, repeat)\n";
}

int run_sweep_mode(const TraceOptions& opt, zc::prof::Profiler* profiler) {
  using namespace zc;

  // Parse the grid spec: ';'-separated key=v1,v2 lists.
  std::vector<std::string> benches{opt.bench};
  std::vector<std::string> experiment_names{opt.experiment};
  std::vector<int> procs_list{opt.procs};
  int repeat = 1;
  std::size_t at = 0;
  const std::string& spec = opt.sweep_spec;
  while (at < spec.size()) {
    const std::size_t semi = spec.find(';', at);
    const std::string field =
        spec.substr(at, semi == std::string::npos ? semi : semi - at);
    at = semi == std::string::npos ? spec.size() : semi + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      std::cerr << "--sweep field '" << field << "' is not key=value\n";
      print_sweep_usage();
      return 1;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "bench") {
      benches = split_list(value);
    } else if (key == "experiment") {
      experiment_names = split_list(value);
    } else if (key == "procs") {
      procs_list.clear();
      for (const std::string& v : split_list(value)) {
        const int p = std::atoi(v.c_str());
        if (p <= 0) {
          std::cerr << "--sweep procs value '" << v << "' is not a positive integer\n";
          print_sweep_usage();
          return 1;
        }
        procs_list.push_back(p);
      }
    } else if (key == "repeat") {
      repeat = std::atoi(value.c_str());
      if (repeat <= 0) {
        std::cerr << "--sweep repeat value '" << value << "' is not a positive integer\n";
        print_sweep_usage();
        return 1;
      }
    } else {
      std::cerr << "--sweep has no key '" << key << "'\n";
      print_sweep_usage();
      return 1;
    }
    if (benches.empty() || experiment_names.empty() || procs_list.empty()) {
      std::cerr << "--sweep key '" << key << "' needs at least one value\n";
      print_sweep_usage();
      return 1;
    }
  }

  std::vector<driver::Experiment> experiments;
  for (const std::string& name : experiment_names) {
    if (name == "all") {
      for (driver::Experiment& e : driver::paper_experiments()) experiments.push_back(std::move(e));
      continue;
    }
    auto e = driver::find_experiment(name);
    if (!e) {
      std::cerr << "unknown experiment '" << name << "' (baseline, rr, cc, pl, "
                   "\"pl with shmem\", \"pl with max latency\", all)\n";
      print_sweep_usage();
      return 1;
    }
    experiments.push_back(std::move(*e));
  }

  // Parse each distinct source exactly once; every grid point over the same
  // bench shares the one immutable program.
  std::map<std::string, std::shared_ptr<const zir::Program>> parsed;
  std::map<std::string, std::map<std::string, long long>> bench_configs;
  for (const std::string& bench : benches) {
    if (parsed.count(bench) != 0) continue;
    if (bench == "figure1") {
      parsed[bench] = std::make_shared<const zir::Program>(parser::parse_program(kSource));
    } else {
      const programs::BenchmarkInfo& info = programs::benchmark(bench);  // throws on unknown
      parsed[bench] = std::make_shared<const zir::Program>(parser::parse_program(info.source));
      bench_configs[bench] = info.test_configs;
    }
  }

  std::vector<exec::SweepItem> items;
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& bench : benches) {
      for (const driver::Experiment& e : experiments) {
        for (const int procs : procs_list) {
          exec::SweepItem item;
          item.label = bench + "/" + e.name + "/p" + std::to_string(procs);
          if (repeat > 1) item.label += "/r" + std::to_string(r);
          item.program = parsed.at(bench);
          item.experiment = e;
          item.procs = procs;
          item.config_overrides = bench_configs[bench];
          items.push_back(std::move(item));
        }
      }
    }
  }

  if (!opt.timeline_csv_path.empty()) {
    std::cerr << "--timeline-csv applies to experiments mode, not --sweep "
                 "(use --timeline-json)\n";
    return 1;
  }

  exec::PlanCache cache;  // per-invocation, so the summary's stats are this sweep's
  exec::SweepOptions sopts;
  sopts.jobs = opt.jobs;
  sopts.plan_cache = &cache;
  sopts.host_profiler = profiler;
  std::unique_ptr<tseries::WallSeries> telemetry;
  if (opt.timeline_requested()) {
    telemetry = exec::make_sweep_series(opt.jobs, opt.timeline_windows);
    sopts.telemetry = telemetry.get();
    // Live progress on stderr: stdout stays bit-identical across schedules
    // (the sweep determinism contract), completion order does not.
    sopts.progress = [](std::size_t done, std::size_t total) {
      std::cerr << "sweep: " << done << "/" << total << " done\n";
    };
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<exec::SweepResult> results = exec::run_sweep(items, sopts);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  int failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exec::SweepResult& r = results[i];
    if (!r.ok) {
      std::cout << items[i].label << ": ERROR: " << r.error << "\n";
      ++failures;
      continue;
    }
    std::cout << items[i].label << ": static " << r.metrics.static_count << ", dynamic "
              << r.metrics.dynamic_count << ", time " << r.metrics.execution_time * 1e3
              << " ms\n";
  }

  const exec::PlanCacheStats cs = cache.stats();
  const int jobs = sopts.jobs == 0 ? exec::ThreadPool::hardware_jobs() : sopts.jobs;
  std::cout << "sweep: " << results.size() << " runs, " << jobs << " job"
            << (jobs == 1 ? "" : "s") << ", " << wall << " s wall; programs parsed: "
            << parsed.size() << "; plan cache: " << cs.hits << " hits, " << cs.misses
            << " misses (hit rate " << cs.hit_rate() << ")\n";
  if (telemetry != nullptr) {
    if (opt.timeline) std::cout << tseries::sweep_summary(*telemetry);
    if (!opt.timeline_json_path.empty()) {
      io::write_text_file(opt.timeline_json_path, telemetry->to_json().dump() + "\n");
      std::cout << "wrote sweep timeline JSON: " << opt.timeline_json_path << "\n";
    }
  }
  if (opt.print_metrics) std::cout << metrics::Registry::global().to_text();
  return failures == 0 ? 0 : 1;
}

int run_experiments_mode(const TraceOptions& opt, zc::prof::Profiler* profiler) {
  using namespace zc;

  std::string_view source;
  std::map<std::string, long long> configs;
  if (opt.bench == "figure1") {
    source = kSource;
  } else {
    const programs::BenchmarkInfo& info = programs::benchmark(opt.bench);
    source = info.source;
    configs = info.test_configs;
  }
  const zir::Program program = parser::parse_program(source);

  std::vector<driver::Experiment> experiments;
  if (opt.experiment == "all") {
    experiments = driver::paper_experiments();
  } else {
    auto e = driver::find_experiment(opt.experiment);
    if (!e) {
      std::cerr << "unknown experiment '" << opt.experiment << "' (see --help)\n";
      return 1;
    }
    experiments.push_back(std::move(*e));
  }

  const bool want_provenance = opt.explain || !opt.report_path.empty();
  // Keeps the last experiment's recorder / timeline alive past the loop so
  // --profile-chrome can pair the simulated tracks with the host tracks.
  std::unique_ptr<trace::Recorder> kept_recorder;
  std::unique_ptr<tseries::SimSeries> kept_timeline;
  for (driver::Experiment e : experiments) {
    report::PassLog log;
    if (want_provenance) e.opts.pass_log = &log;

    auto recorder_ptr = std::make_unique<trace::Recorder>(opt.procs);
    trace::Recorder& recorder = *recorder_ptr;
    std::unique_ptr<tseries::SimSeries> timeline_ptr;
    sim::RunConfig cfg;
    cfg.procs = opt.procs;
    cfg.config_overrides = configs;
    if (opt.trace_requested) cfg.recorder = &recorder;
    if (opt.timeline_requested()) {
      timeline_ptr = std::make_unique<tseries::SimSeries>(opt.procs, opt.timeline_windows);
      cfg.timeline = timeline_ptr.get();
    }
    const driver::Metrics m = driver::run_experiment(program, e, cfg);

    std::cout << "== " << opt.bench << " / " << e.name << ": static " << m.static_count
              << ", dynamic " << m.dynamic_count << ", time "
              << m.execution_time * 1e3 << " ms ==\n";
    if (opt.explain) std::cout << log.to_string();
    if (!opt.report_path.empty()) {
      const std::string path = experiments.size() > 1
                                   ? with_experiment_suffix(opt.report_path, e.name)
                                   : opt.report_path;
      driver::ReportOptions ropts;
      ropts.benchmark = opt.bench;
      ropts.host_profiler = profiler;
      ropts.timeline = timeline_ptr.get();
      json::Value doc = driver::build_report(m, e, opt.procs, &log, ropts);
      if (opt.trace_requested) {
        driver::attach_attribution(doc, recorder, program, m.plan, ropts.max_attribution_rows);
      }
      io::write_text_file(path, doc.dump() + "\n");
      std::cout << "wrote run report: " << path << "\n";
    }
    if (opt.blame) {
      std::cout << analysis::compute_blame(recorder, program, m.plan).to_string(opt.top);
    }
    if (opt.critical_path) {
      std::cout << analysis::compute_critical_path(recorder, program, m.plan)
                       .to_string(opt.top);
    }
    if (!opt.attribute_vs.empty()) {
      auto vs = driver::find_experiment(opt.attribute_vs);
      if (!vs) {
        std::cerr << "unknown --attribute-vs experiment '" << opt.attribute_vs << "'\n";
        return 1;
      }
      trace::Recorder vs_recorder(opt.procs);
      sim::RunConfig vs_cfg;
      vs_cfg.procs = opt.procs;
      vs_cfg.config_overrides = configs;
      vs_cfg.recorder = &vs_recorder;
      const driver::Metrics vm = driver::run_experiment(program, *vs, vs_cfg);
      const analysis::BlameDiff diff = analysis::diff_blame(
          analysis::compute_blame(vs_recorder, program, vm.plan),
          analysis::compute_blame(recorder, program, m.plan), vs->name, e.name);
      std::cout << diff.to_string(opt.top);
    }
    if (!opt.trace_path.empty()) {
      const std::string path = experiments.size() > 1
                                   ? with_experiment_suffix(opt.trace_path, e.name)
                                   : opt.trace_path;
      // The timeline, when present, rides along as pid-4 counter tracks.
      trace::write_chrome_trace(&recorder, nullptr, timeline_ptr.get(), path);
      std::cout << "wrote Chrome trace: " << path << "\n";
    }
    if (opt.print_stats) std::cout << m.trace_stats->to_string();
    if (!opt.stats_csv_path.empty()) {
      const std::string path = experiments.size() > 1
                                   ? with_experiment_suffix(opt.stats_csv_path, e.name)
                                   : opt.stats_csv_path;
      io::write_text_file(path, m.trace_stats->to_csv());
      std::cout << "wrote trace stats CSV: " << path << "\n";
    }
    if (timeline_ptr != nullptr) {
      if (opt.timeline) {
        std::cout << tseries::heatmap(*timeline_ptr, opt.bench + " / " + e.name);
      }
      if (!opt.timeline_csv_path.empty()) {
        const std::string path = experiments.size() > 1
                                     ? with_experiment_suffix(opt.timeline_csv_path, e.name)
                                     : opt.timeline_csv_path;
        io::write_text_file(path, timeline_ptr->to_csv());
        std::cout << "wrote timeline CSV: " << path << "\n";
      }
      if (!opt.timeline_json_path.empty()) {
        const std::string path = experiments.size() > 1
                                     ? with_experiment_suffix(opt.timeline_json_path, e.name)
                                     : opt.timeline_json_path;
        io::write_text_file(path, timeline_ptr->to_json().dump() + "\n");
        std::cout << "wrote timeline JSON: " << path << "\n";
      }
    }
    kept_recorder = std::move(recorder_ptr);
    kept_timeline = std::move(timeline_ptr);
  }
  if (opt.print_metrics) std::cout << metrics::Registry::global().to_text();
  if (!opt.profile_chrome_path.empty()) {
    trace::write_chrome_trace(opt.trace_requested ? kept_recorder.get() : nullptr, profiler,
                              kept_timeline.get(), opt.profile_chrome_path);
    std::cout << "wrote host profile Chrome trace: " << opt.profile_chrome_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;

  TraceOptions opt;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << a << " needs a value\n";
        usage(1);
      }
      return args[++i];
    };
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--bench") opt.bench = value();
    else if (a == "--experiment") opt.experiment = value();
    else if (a == "--procs") {
      const std::string v = value();
      char* end = nullptr;
      opt.procs = static_cast<int>(std::strtol(v.c_str(), &end, 10));
      if (end == v.c_str() || *end != '\0' || opt.procs <= 0) {
        std::cerr << "--procs needs a positive integer, got '" << v << "'\n";
        usage(1);
      }
    }
    else if (a == "--trace") { opt.trace_path = value(); opt.trace_requested = true; }
    else if (a == "--trace-stats") { opt.print_stats = true; opt.trace_requested = true; }
    else if (a == "--trace-stats-csv") { opt.stats_csv_path = value(); opt.trace_requested = true; }
    else if (a == "--explain") {
      opt.explain = true;
      // Optional positional value: `--explain tomcatv` names the benchmark.
      if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) opt.bench = args[++i];
    }
    else if (a == "--report") opt.report_path = value();
    else if (a == "--metrics") opt.print_metrics = true;
    else if (a == "--blame") { opt.blame = true; opt.trace_requested = true; }
    else if (a == "--critical-path") { opt.critical_path = true; opt.trace_requested = true; }
    else if (a == "--attribute-vs") { opt.attribute_vs = value(); opt.trace_requested = true; }
    else if (a.rfind("--attribute-vs=", 0) == 0) {
      opt.attribute_vs = a.substr(std::string("--attribute-vs=").size());
      opt.trace_requested = true;
    }
    else if (a == "--profile") opt.profile = true;
    else if (a == "--profile-folded") opt.profile_folded_path = value();
    else if (a.rfind("--profile-folded=", 0) == 0) {
      opt.profile_folded_path = a.substr(std::string("--profile-folded=").size());
    }
    else if (a == "--profile-chrome") opt.profile_chrome_path = value();
    else if (a.rfind("--profile-chrome=", 0) == 0) {
      opt.profile_chrome_path = a.substr(std::string("--profile-chrome=").size());
    }
    else if (a == "--timeline") opt.timeline = true;
    else if (a.rfind("--timeline=", 0) == 0) {
      opt.timeline = true;
      const std::string v = a.substr(std::string("--timeline=").size());
      char* end = nullptr;
      opt.timeline_windows = static_cast<int>(std::strtol(v.c_str(), &end, 10));
      if (end == v.c_str() || *end != '\0' || opt.timeline_windows <= 0) {
        std::cerr << "--timeline needs a positive window count, got '" << v << "'\n";
        usage(1);
      }
    }
    else if (a == "--timeline-csv") opt.timeline_csv_path = value();
    else if (a.rfind("--timeline-csv=", 0) == 0) {
      opt.timeline_csv_path = a.substr(std::string("--timeline-csv=").size());
    }
    else if (a == "--timeline-json") opt.timeline_json_path = value();
    else if (a.rfind("--timeline-json=", 0) == 0) {
      opt.timeline_json_path = a.substr(std::string("--timeline-json=").size());
    }
    else if (a == "--sweep") opt.sweep_spec = value();
    else if (a.rfind("--sweep=", 0) == 0) opt.sweep_spec = a.substr(std::string("--sweep=").size());
    else if (a == "--jobs" || a.rfind("--jobs=", 0) == 0) {
      const std::string v = a == "--jobs" ? value() : a.substr(std::string("--jobs=").size());
      char* end = nullptr;
      opt.jobs = static_cast<int>(std::strtol(v.c_str(), &end, 10));
      if (end == v.c_str() || *end != '\0' || opt.jobs < 0) {
        std::cerr << "--jobs needs a non-negative integer, got '" << v << "'\n";
        usage(1);
      }
      opt.jobs_given = true;
    }
    else if (a == "--top") {
      const std::string v = value();
      char* end = nullptr;
      opt.top = static_cast<int>(std::strtol(v.c_str(), &end, 10));
      if (end == v.c_str() || *end != '\0' || opt.top < 0) {
        std::cerr << "--top needs a non-negative integer, got '" << v << "'\n";
        usage(1);
      }
    }
    else {
      std::cerr << "unknown option: " << a << "\n";
      usage(1);
    }
  }

  try {
    // The profiler watches the whole invocation: one "comm_explorer" root
    // span, with the instrumented pipeline (frontend, optimizer passes,
    // sim, analysis) nesting under it. Unless a --profile* flag was given,
    // nothing attaches and every Span below is a no-op pointer test.
    prof::Profiler profiler;
    prof::Profiler* prof_ptr = opt.profile_requested() ? &profiler : nullptr;
    prof::Attach attach(prof_ptr);
    if (opt.jobs_given && opt.sweep_spec.empty()) {
      std::cerr << "--jobs only applies to --sweep\n";
      return 1;
    }
    int rc = 0;
    {
      ZC_PROF_SPAN("comm_explorer");
      if (!opt.sweep_spec.empty()) {
        rc = run_sweep_mode(opt, prof_ptr);
      } else if (opt.run_requested()) {
        rc = run_experiments_mode(opt, prof_ptr);
      } else {
        const zir::Program program = parser::parse_program(kSource);
        show_listings(program);
      }
    }
    if (prof_ptr != nullptr && rc == 0) {
      if (opt.profile) std::cout << profiler.to_text();
      if (!opt.profile_folded_path.empty()) {
        io::write_text_file(opt.profile_folded_path, profiler.to_folded());
        std::cout << "wrote folded profile: " << opt.profile_folded_path << "\n";
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
