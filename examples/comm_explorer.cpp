// Communication explorer: shows what the optimizer actually does to a
// program, in the style of the paper's Figure 1 — the annotated SPMD
// listing with DR/SR/DN/SV calls, at every optimization level and under
// every combining heuristic.
//
// Build & run:  cmake --build build && ./build/examples/comm_explorer
#include <iostream>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"

namespace {

// The paper's Figure 1 program, plus a window structure that distinguishes
// the combining heuristics (Figure 2).
constexpr std::string_view kSource = R"zpl(
program figure1;

config n : integer = 8;

region R = [1..n, 1..n];

direction east = [0, 1];

var A, B, C, D, E, U : [R] double;

procedure main() {
  [R] B := Index1 * 0.5;     -- B is modified here ...
  [R] A := B@east;           -- ... so B's slice is communicated here
  [R] C := B@east;           -- redundant: B unchanged since the last transfer
  [R] D := E@east;           -- combinable with B's communication
  [R] U := A + D;
  [R] C := U@east + E@east;  -- E redundant; U nests differently
}
)zpl";

void show(const zc::zir::Program& program, const std::string& title,
          const zc::comm::OptOptions& opts) {
  const zc::comm::CommPlan plan = zc::comm::plan_communication(program, opts);
  std::cout << "== " << title << " (" << plan.static_count() << " communications) ==\n";
  std::cout << zc::comm::to_string(plan, program) << "\n";
}

}  // namespace

int main() {
  using namespace zc;
  const zir::Program program = parser::parse_program(kSource);

  show(program, "baseline: message vectorization only (Figure 1a)",
       comm::OptOptions::for_level(comm::OptLevel::kBaseline));
  show(program, "rr: + redundant communication removal (Figure 1b)",
       comm::OptOptions::for_level(comm::OptLevel::kRR));
  show(program, "cc: + communication combination (Figure 1c)",
       comm::OptOptions::for_level(comm::OptLevel::kCC));
  show(program, "pl: + communication pipelining (Figure 1d)",
       comm::OptOptions::for_level(comm::OptLevel::kPL));

  comm::OptOptions maxlat = comm::OptOptions::for_level(comm::OptLevel::kPL);
  maxlat.heuristic = comm::CombineHeuristic::kMaxLatency;
  show(program, "pl, combining for maximum latency hiding (Figure 2c)", maxlat);

  comm::OptOptions hybrid = comm::OptOptions::for_level(comm::OptLevel::kPL);
  hybrid.heuristic = comm::CombineHeuristic::kHybrid;
  show(program, "pl, hybrid heuristic (the paper's future-work suggestion)", hybrid);

  std::cout << "Reading the listings: SR lines that moved up relative to their DN show\n"
               "pipelining; multiple arrays in one call show combining; '-- redundant'\n"
               "annotations mark transfers removed by rr.\n";
  return 0;
}
