// Quickstart: the whole pipeline in one file.
//
//   1. Write a mini-ZPL program (here: 2-D Jacobi relaxation).
//   2. Parse it.
//   3. Plan communication at an optimization level (the paper's Figure 9
//      key: baseline / rr / cc / pl).
//   4. Run it on the simulated Cray T3D and read the three paper metrics:
//      static count, dynamic count, execution time.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/sim/engine.h"
#include "src/support/str.h"

namespace {

constexpr std::string_view kSource = R"zpl(
program quickstart;

config n     : integer = 64;
config iters : integer = 20;

region R = [0..n+1, 0..n+1];           -- array region, with borders
region I = [1..n, 1..n];               -- computation region

direction east = [0, 1], west = [0, -1], north = [-1, 0], south = [1, 0];

var A, B, G : [R] double;
var err : double;

procedure main() {
  [R] A := 0.0;
  [R] G := 0.0;
  [0..n+1, 0] A := 1.0;                -- hot west border
  for it in 1..iters {
    [I] B := 0.25 * (A@east + A@west + A@north + A@south);
    [I] G := abs(A@east - A@west) + abs(A@north - A@south);  -- re-reads: redundant
    [I] err := max<< abs(B - A);
    [I] A := B;
  }
}
)zpl";

}  // namespace

int main() {
  using namespace zc;

  // Parse (throws zc::Error with line:column diagnostics on bad input).
  const zir::Program program = parser::parse_program(kSource);
  std::cout << "parsed '" << program.name() << "': " << program.array_count() << " arrays, "
            << program.stmt_count() << " statements\n\n";

  std::cout << "level    | static | dynamic |  time (s) | scaled\n";
  std::cout << "---------+--------+---------+-----------+-------\n";

  double baseline_time = 0.0;
  for (const auto level : {comm::OptLevel::kBaseline, comm::OptLevel::kRR, comm::OptLevel::kCC,
                           comm::OptLevel::kPL}) {
    // Plan communication: where each DR/SR/DN/SV call goes.
    const comm::CommPlan plan =
        comm::plan_communication(program, comm::OptOptions::for_level(level));

    // Run on a simulated 64-node T3D with PVM.
    sim::RunConfig cfg;
    cfg.machine = machine::t3d_model();
    cfg.library = ironman::CommLibrary::kPVM;
    cfg.procs = 64;
    const sim::RunResult result = sim::run_program(program, plan, cfg);

    if (level == comm::OptLevel::kBaseline) baseline_time = result.elapsed_seconds;
    std::cout << str::pad_right(comm::to_string(level), 8) << " | "
              << str::pad_left(std::to_string(plan.static_count()), 6) << " | "
              << str::pad_left(std::to_string(result.dynamic_count), 7) << " | "
              << str::format_f(result.elapsed_seconds, 6) << " | "
              << str::percent(result.elapsed_seconds, baseline_time) << "\n";
  }

  // The numbers are real: the final residual is available too.
  const comm::CommPlan plan =
      comm::plan_communication(program, comm::OptOptions::for_level(comm::OptLevel::kPL));
  sim::RunConfig cfg;
  cfg.procs = 64;
  const sim::RunResult result = sim::run_program(program, plan, cfg);
  std::cout << "\nfinal residual err = " << result.scalars.at("err")
            << ", checksum(A) = " << result.checksums.at("A") << "\n";
  std::cout << "(identical at every optimization level — the golden tests rely on it)\n";
  return 0;
}
