// Domain example: Conway's Life on a distributed grid — the classic ZPL
// demo program. Eight-direction stencils make it a stress test for
// combining (all eight neighbor slices of the same array merge into eight
// direction groups, and the neighbor-count statement re-reads nothing).
//
// Build & run:  cmake --build build && ./build/examples/ocean_life
#include <iostream>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"
#include "src/support/str.h"

int main() {
  using namespace zc;

  const zir::Program program = parser::parse_program(programs::kernel_source("life"));

  std::cout << "Life on a simulated 16-node T3D, per optimization level:\n\n";
  std::cout << "level    | static | dynamic | messages |   bytes   | time (s)\n";
  std::cout << "---------+--------+---------+----------+-----------+---------\n";
  long long population = -1;
  for (const auto level : {comm::OptLevel::kBaseline, comm::OptLevel::kRR, comm::OptLevel::kCC,
                           comm::OptLevel::kPL}) {
    const comm::CommPlan plan =
        comm::plan_communication(program, comm::OptOptions::for_level(level));
    sim::RunConfig cfg;
    cfg.procs = 16;
    cfg.config_overrides = {{"n", 64}, {"gens", 12}};
    const sim::RunResult r = sim::run_program(program, plan, cfg);
    std::cout << str::pad_right(comm::to_string(level), 8) << " | "
              << str::pad_left(std::to_string(plan.static_count()), 6) << " | "
              << str::pad_left(std::to_string(r.dynamic_count), 7) << " | "
              << str::pad_left(std::to_string(r.total_messages), 8) << " | "
              << str::pad_left(str::with_commas(r.total_bytes), 9) << " | "
              << str::format_f(r.elapsed_seconds, 6) << "\n";
    const long long alive = static_cast<long long>(r.scalars.at("alive"));
    if (population < 0) population = alive;
    if (population != alive) {
      std::cerr << "BUG: optimization changed the world!\n";
      return 1;
    }
  }
  std::cout << "\nfinal population: " << population
            << " cells alive after 12 generations (identical at every level)\n";

  // Scaling sweep: the same world on growing partitions.
  std::cout << "\nprocs | time (s)  | speedup\n";
  std::cout << "------+-----------+--------\n";
  const comm::CommPlan plan =
      comm::plan_communication(program, comm::OptOptions::for_level(comm::OptLevel::kPL));
  double t1 = 0.0;
  for (const int procs : {1, 4, 16, 64}) {
    sim::RunConfig cfg;
    cfg.procs = procs;
    cfg.config_overrides = {{"n", 64}, {"gens", 12}};
    const sim::RunResult r = sim::run_program(program, plan, cfg);
    if (procs == 1) t1 = r.elapsed_seconds;
    std::cout << str::pad_left(std::to_string(procs), 5) << " | "
              << str::format_f(r.elapsed_seconds, 6) << "  | "
              << str::format_f(t1 / r.elapsed_seconds, 2) << "x\n";
  }
  return 0;
}
