// Domain example: 3-D heat diffusion with a moving hot spot, built with the
// ProgramBuilder C++ API instead of mini-ZPL text. Demonstrates:
//   - rank-3 arrays (dim 2 is processor-local: k-shifts cost nothing)
//   - loop-indexed regions (a hot plane swept through the domain)
//   - comparing machines and libraries on one program
//
// Build & run:  cmake --build build && ./build/examples/heat_equation
#include <iostream>

#include "src/comm/optimizer.h"
#include "src/sim/engine.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/zir/builder.h"
#include "src/zir/printer.h"

int main() {
  using namespace zc;
  using zir::Ix;

  zir::ProgramBuilder b("heat3d_spot");
  const Ix n = b.config("n", 24);
  const Ix iters = b.config("iters", 8);
  const zir::RegionId R = b.region("R", {{0, n + 1}, {0, n + 1}, {0, n + 1}});
  const zir::RegionId I = b.region("I", {{1, n}, {1, n}, {1, n}});
  const zir::DirectionId ip = b.direction("ip", {1, 0, 0});
  const zir::DirectionId im = b.direction("im", {-1, 0, 0});
  const zir::DirectionId jp = b.direction("jp", {0, 1, 0});
  const zir::DirectionId jm = b.direction("jm", {0, -1, 0});
  const zir::DirectionId kp = b.direction("kp", {0, 0, 1});  // no comm: local dim
  const zir::DirectionId km = b.direction("km", {0, 0, -1});
  const zir::ArrayId T = b.array("T", R);
  const zir::ArrayId TN = b.array("TN", R);
  const zir::ScalarId peak = b.scalar("peak");

  b.proc("main", [&] {
    b.assign(R, T, b.lit(0.0));
    b.assign(R, TN, b.lit(0.0));
    b.for_("step", 1, iters, [&] {
      // The hot plane moves with the loop index: a loop-dependent region.
      const Ix s = b.loop_ix();
      b.assign(zir::ProgramBuilder::spec({{s, s}, {1, n}, {1, n}}), T,
               b.ref(T) + 2.0 * (1.0 + 0.1 * b.loop_ex()));
      // Explicit 7-point diffusion; the k-direction shifts generate no
      // communication under the 2-D block distribution.
      b.assign(I, TN,
               b.ref(T) + 0.08 * (b.at(T, ip) + b.at(T, im) + b.at(T, jp) + b.at(T, jm) +
                                  b.at(T, kp) + b.at(T, km) - 6.0 * b.ref(T)));
      b.assign(I, T, b.ref(TN));
      b.sassign_over(b.spec_of(I), peak, b.reduce(zir::ReduceOp::kMax, b.ref(T)));
    });
  });
  const zir::Program program = std::move(b).finish();

  std::cout << "Generated program:\n" << zir::to_source(program) << "\n";

  Table table({"machine / library", "level", "static", "dynamic", "time (s)"});
  table.set_align(1, Align::kLeft);
  struct Setup {
    const char* label;
    machine::MachineModel machine;
    ironman::CommLibrary library;
  };
  const Setup setups[] = {
      {"t3d / pvm", machine::t3d_model(), ironman::CommLibrary::kPVM},
      {"t3d / shmem", machine::t3d_model(), ironman::CommLibrary::kSHMEM},
      {"paragon / csend-crecv", machine::paragon_model(), ironman::CommLibrary::kNXSync},
      {"paragon / isend-irecv", machine::paragon_model(), ironman::CommLibrary::kNXAsync},
  };
  for (const Setup& s : setups) {
    for (const auto level : {comm::OptLevel::kBaseline, comm::OptLevel::kPL}) {
      const comm::CommPlan plan =
          comm::plan_communication(program, comm::OptOptions::for_level(level));
      sim::RunConfig cfg;
      cfg.machine = s.machine;
      cfg.library = s.library;
      cfg.procs = 16;
      const sim::RunResult r = sim::run_program(program, plan, cfg);
      RowBuilder rb;
      rb.cell(s.label)
          .cell(comm::to_string(level))
          .cell(static_cast<long long>(plan.static_count()))
          .cell(r.dynamic_count)
          .cell(r.elapsed_seconds, 6);
      table.add_row(std::move(rb).build());
      if (level == comm::OptLevel::kPL) {
        std::cout << "  peak temperature (" << s.label << "): " << r.scalars.at("peak") << "\n";
      }
    }
    table.add_separator();
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nNote the identical peak temperatures: optimization and transport choice\n"
               "never change the numerics, only the clock.\n";
  return 0;
}
