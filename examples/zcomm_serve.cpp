// zcomm_serve: the long-running plan-optimization daemon. Clients send
// JSON-line requests ("optimize program P for machine M at options O; run
// it and stream back the plan, the run report, and attribution") over a
// Unix-domain socket, loopback TCP, or stdin; every answer is served from
// the process-wide content-keyed plan cache, so concurrent clients asking
// for the same configuration share one planning run.
//
// Build & run:  cmake --build build && ./build/examples/zcomm_serve
//
//   zcomm_serve                              # serve stdin -> stdout
//   zcomm_serve --socket /tmp/zcomm.sock     # Unix-domain listener
//   zcomm_serve --tcp 7070                   # loopback TCP (0 = ephemeral)
//   zcomm_serve --requests batch.jsonl       # answer a file of requests, exit
//   echo '{"v":1,"cmd":"optimize","id":"r1","bench":"tomcatv",
//          "experiment":"pl","procs":16}' | zcomm_serve
//
// Protocol (see src/serve/protocol.h): one JSON object per line, each
// stamped "v":1. {"cmd":"stats"} reports request counts, latency
// quantiles, plan-cache hit rate, queue depth, uptime, and per-error-code
// counts; {"cmd":"flight"} dumps the flight recorder (the N most recent
// and N slowest requests with per-phase host-time breakdowns);
// {"cmd":"shutdown"} (or SIGINT/SIGTERM) drains gracefully — admitted
// requests finish and answer before the process exits.
//
// Observability (see README "Operating zcomm_serve"): --http starts a
// loopback HTTP listener with GET /metrics (Prometheus), /healthz, and
// /flight; --log-* control the structured log (logfmt or JSON-lines on
// stderr or a file); --flight / --slow-ms tune the flight recorder.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "src/serve/server.h"
#include "src/support/diag.h"
#include "src/support/log.h"

namespace {

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: zcomm_serve [options]\n"
      "  --socket <path>       listen on a Unix-domain socket\n"
      "  --tcp <port>          listen on loopback TCP (0 = kernel-chosen;\n"
      "                        the bound port prints on stderr)\n"
      "  --stdin               serve stdin -> stdout (the default when no\n"
      "                        listener is configured)\n"
      "  --requests <file>     serve the file's request lines to stdout,\n"
      "                        drain, and exit\n"
      "  --jobs <N>            worker threads for admitted requests\n"
      "                        (default 2)\n"
      "  --batch-jobs <N>      exec::ThreadPool width for one request's\n"
      "                        run grid (default 1)\n"
      "  --max-queue <N>       admission cap: requests queued + executing\n"
      "                        (default 64; beyond it clients get\n"
      "                        \"overloaded\" + retry_after_ms)\n"
      "  --retry-after-ms <N>  backoff stamped on overload responses\n"
      "                        (default 50)\n"
      "  --http <port>         loopback HTTP listener: GET /metrics\n"
      "                        (Prometheus text), /healthz (503 while\n"
      "                        draining), /flight (recorder dump as JSON);\n"
      "                        0 = kernel-chosen (read http_port=N from the\n"
      "                        startup log line)\n"
      "  --flight <N>          flight-recorder depth: keep the N most\n"
      "                        recent and N slowest requests with phase\n"
      "                        breakdowns (default 16; 0 disables the\n"
      "                        recorder and the per-request profiler)\n"
      "  --slow-ms <N>         log requests slower than N ms at warn with\n"
      "                        their phase breakdown (default 1000; 0\n"
      "                        disables the slow classification)\n"
      "  --debug-sleep-ms <N>  test seam: every optimize request sleeps\n"
      "                        N ms inside a \"debug_sleep\" profiler span\n"
      "  --log-level <L>       trace|debug|info|warn|error|off (default info)\n"
      "  --log-format <F>      text (logfmt) or json (default text)\n"
      "  --log-file <path>     append log lines to a file (default stderr)\n"
      "  --log-rate <N>        cap admitted log lines per second (dropped\n"
      "                        lines are counted and reported; 0 = no cap)\n"
      "  --help\n";
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;

  serve::ServerOptions opt;
  std::string requests_path;
  bool stdin_requested = false;
  bool tcp_requested = false;
  bool http_requested = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value (see --help)\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto int_value = [&](const char* flag, int min) -> int {
      const std::string v = value(flag);
      const int n = std::atoi(v.c_str());
      if (n < min || (n == 0 && v != "0")) {
        std::cerr << flag << " value '" << v << "' is not an integer >= " << min
                  << "\n";
        std::exit(2);
      }
      return n;
    };
    const auto port_value = [&](const char* flag) -> int {
      const int n = int_value(flag, 0);
      if (n > 65535) {
        std::cerr << flag << " value " << n << " is not a port (0..65535)\n";
        std::exit(2);
      }
      return n;
    };
    if (a == "--socket") opt.unix_socket_path = value("--socket");
    else if (a == "--tcp") { opt.tcp_port = port_value("--tcp"); tcp_requested = true; }
    else if (a == "--stdin") stdin_requested = true;
    else if (a == "--requests") requests_path = value("--requests");
    else if (a == "--jobs") opt.service.jobs = int_value("--jobs", 1);
    else if (a == "--batch-jobs") opt.service.batch_jobs = int_value("--batch-jobs", 1);
    else if (a == "--max-queue") opt.service.max_queue_depth = int_value("--max-queue", 1);
    else if (a == "--retry-after-ms") opt.service.retry_after_ms = int_value("--retry-after-ms", 0);
    else if (a == "--http") { opt.http_port = port_value("--http"); http_requested = true; }
    else if (a == "--flight") {
      opt.service.flight_capacity = static_cast<std::size_t>(int_value("--flight", 0));
    }
    else if (a == "--slow-ms") {
      opt.service.slow_request_seconds = int_value("--slow-ms", 0) / 1e3;
    }
    else if (a == "--debug-sleep-ms") {
      opt.service.debug_sleep_ms = int_value("--debug-sleep-ms", 0);
    }
    else if (a == "--log-level") {
      const std::string v = value("--log-level");
      log::Level level = log::Level::kInfo;
      if (!log::parse_level(v, level)) {
        std::cerr << "--log-level '" << v
                  << "' is not trace|debug|info|warn|error|off\n";
        return 2;
      }
      log::Logger::global().set_level(level);
    }
    else if (a == "--log-format") {
      const std::string v = value("--log-format");
      if (v == "text") log::Logger::global().set_format(log::Format::kText);
      else if (v == "json") log::Logger::global().set_format(log::Format::kJson);
      else {
        std::cerr << "--log-format '" << v << "' is not text|json\n";
        return 2;
      }
    }
    else if (a == "--log-file") {
      const std::string path = value("--log-file");
      if (!log::Logger::global().set_file(path)) {
        std::cerr << "error: cannot open log file '" << path << "'\n";
        return 1;
      }
    }
    else if (a == "--log-rate") {
      log::Logger::global().set_rate_limit(int_value("--log-rate", 0));
    }
    else if (a == "--help" || a == "-h") usage(0);
    else {
      std::cerr << "unknown option '" << a << "' (see --help)\n";
      return 2;
    }
  }
  if (!tcp_requested) opt.tcp_port = -1;
  if (!http_requested) opt.http_port = -1;

  try {
    if (!requests_path.empty()) {
      // Batch mode: the stdin path with a file instead — handy for smoke
      // tests and scripted use. Responses stream to stdout as they finish.
      std::ifstream in(requests_path);
      if (!in) {
        std::cerr << "error: cannot open requests file '" << requests_path << "'\n";
        return 1;
      }
      serve::Service service(opt.service);
      std::mutex out_mu;
      const auto emit = [&out_mu](const std::string& line) {
        const std::lock_guard<std::mutex> lk(out_mu);
        std::cout << line << '\n';
      };
      std::string line;
      bool keep_serving = true;
      while (keep_serving && std::getline(in, line)) {
        if (line.empty()) continue;
        keep_serving = service.handle_line("file", line, emit);
      }
      service.drain();
      return 0;
    }

    opt.serve_stdin =
        stdin_requested || (opt.unix_socket_path.empty() && !tcp_requested);
    serve::Server server(opt);
    serve::Server::install_signal_handlers(server);
    if (!opt.unix_socket_path.empty()) {
      std::cerr << "zcomm_serve: listening on unix socket " << opt.unix_socket_path
                << "\n";
    }
    if (tcp_requested) {
      std::cerr << "zcomm_serve: listening on 127.0.0.1:" << server.tcp_port()
                << "\n";
    }
    if (http_requested) {
      std::cerr << "zcomm_serve: http on 127.0.0.1:" << server.http_port()
                << "\n";
    }
    if (opt.serve_stdin) std::cerr << "zcomm_serve: serving stdin\n";
    return server.run();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
