// zcomm_serve: the long-running plan-optimization daemon. Clients send
// JSON-line requests ("optimize program P for machine M at options O; run
// it and stream back the plan, the run report, and attribution") over a
// Unix-domain socket, loopback TCP, or stdin; every answer is served from
// the process-wide content-keyed plan cache, so concurrent clients asking
// for the same configuration share one planning run.
//
// Build & run:  cmake --build build && ./build/examples/zcomm_serve
//
//   zcomm_serve                              # serve stdin -> stdout
//   zcomm_serve --socket /tmp/zcomm.sock     # Unix-domain listener
//   zcomm_serve --tcp 7070                   # loopback TCP (0 = ephemeral)
//   zcomm_serve --requests batch.jsonl       # answer a file of requests, exit
//   echo '{"v":1,"cmd":"optimize","id":"r1","bench":"tomcatv",
//          "experiment":"pl","procs":16}' | zcomm_serve
//
// Protocol (see src/serve/protocol.h): one JSON object per line, each
// stamped "v":1. {"cmd":"stats"} reports request counts, latency
// quantiles, plan-cache hit rate, and queue depth; {"cmd":"shutdown"} (or
// SIGINT/SIGTERM) drains gracefully — admitted requests finish and answer
// before the process exits.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "src/serve/server.h"
#include "src/support/diag.h"

namespace {

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: zcomm_serve [options]\n"
      "  --socket <path>       listen on a Unix-domain socket\n"
      "  --tcp <port>          listen on loopback TCP (0 = kernel-chosen;\n"
      "                        the bound port prints on stderr)\n"
      "  --stdin               serve stdin -> stdout (the default when no\n"
      "                        listener is configured)\n"
      "  --requests <file>     serve the file's request lines to stdout,\n"
      "                        drain, and exit\n"
      "  --jobs <N>            worker threads for admitted requests\n"
      "                        (default 2)\n"
      "  --batch-jobs <N>      exec::ThreadPool width for one request's\n"
      "                        run grid (default 1)\n"
      "  --max-queue <N>       admission cap: requests queued + executing\n"
      "                        (default 64; beyond it clients get\n"
      "                        \"overloaded\" + retry_after_ms)\n"
      "  --retry-after-ms <N>  backoff stamped on overload responses\n"
      "                        (default 50)\n"
      "  --help\n";
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;

  serve::ServerOptions opt;
  std::string requests_path;
  bool stdin_requested = false;
  bool tcp_requested = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value (see --help)\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto int_value = [&](const char* flag, int min) -> int {
      const std::string v = value(flag);
      const int n = std::atoi(v.c_str());
      if (n < min || (n == 0 && v != "0")) {
        std::cerr << flag << " value '" << v << "' is not an integer >= " << min
                  << "\n";
        std::exit(2);
      }
      return n;
    };
    if (a == "--socket") opt.unix_socket_path = value("--socket");
    else if (a == "--tcp") { opt.tcp_port = int_value("--tcp", 0); tcp_requested = true; }
    else if (a == "--stdin") stdin_requested = true;
    else if (a == "--requests") requests_path = value("--requests");
    else if (a == "--jobs") opt.service.jobs = int_value("--jobs", 1);
    else if (a == "--batch-jobs") opt.service.batch_jobs = int_value("--batch-jobs", 1);
    else if (a == "--max-queue") opt.service.max_queue_depth = int_value("--max-queue", 1);
    else if (a == "--retry-after-ms") opt.service.retry_after_ms = int_value("--retry-after-ms", 0);
    else if (a == "--help" || a == "-h") usage(0);
    else {
      std::cerr << "unknown option '" << a << "' (see --help)\n";
      return 2;
    }
  }
  if (!tcp_requested) opt.tcp_port = -1;

  try {
    if (!requests_path.empty()) {
      // Batch mode: the stdin path with a file instead — handy for smoke
      // tests and scripted use. Responses stream to stdout as they finish.
      std::ifstream in(requests_path);
      if (!in) {
        std::cerr << "error: cannot open requests file '" << requests_path << "'\n";
        return 1;
      }
      serve::Service service(opt.service);
      std::mutex out_mu;
      const auto emit = [&out_mu](const std::string& line) {
        const std::lock_guard<std::mutex> lk(out_mu);
        std::cout << line << '\n';
      };
      std::string line;
      bool keep_serving = true;
      while (keep_serving && std::getline(in, line)) {
        if (line.empty()) continue;
        keep_serving = service.handle_line("file", line, emit);
      }
      service.drain();
      return 0;
    }

    opt.serve_stdin =
        stdin_requested || (opt.unix_socket_path.empty() && !tcp_requested);
    serve::Server server(opt);
    serve::Server::install_signal_handlers(server);
    if (!opt.unix_socket_path.empty()) {
      std::cerr << "zcomm_serve: listening on unix socket " << opt.unix_socket_path
                << "\n";
    }
    if (tcp_requested) {
      std::cerr << "zcomm_serve: listening on 127.0.0.1:" << server.tcp_port()
                << "\n";
    }
    if (opt.serve_stdin) std::cerr << "zcomm_serve: serving stdin\n";
    return server.run();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
