// serve_client: a line-oriented client for the zcomm_serve daemon.
//
// Connects to a running daemon (--socket PATH or --tcp PORT on loopback),
// sends every JSON-line request read from stdin (or given via --line, in
// order), prints every response line to stdout, and exits once the server
// has answered each request with its terminal line — pong / stats /
// shutdown for the control commands, done or error for optimize (a
// malformed line also terminates with one error). Exit status is 0 iff
// every request terminated without an error response.
//
//   echo '{"v":1,"cmd":"optimize","id":"r1","bench":"jacobi","procs":4}' |
//     serve_client --socket /tmp/zcomm.sock
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/support/diag.h"
#include "src/support/json.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: serve_client (--socket PATH | --tcp PORT) [--line JSON]...\n"
        "  sends JSON-line requests (stdin when no --line is given) to a\n"
        "  running zcomm_serve daemon and prints the response stream\n";
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// True for the line that ends a request's response stream.
bool is_terminal(const std::string& line, bool& is_error) {
  try {
    const zc::json::Value v = zc::json::parse(line);
    const std::string& kind = v.at("kind").string;
    is_error = kind == "error";
    return is_error || kind == "pong" || kind == "stats" ||
           kind == "shutdown" || kind == "done";
  } catch (const zc::Error&) {
    is_error = true;  // an unparseable response is a protocol breach
    return true;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int tcp_port = -1;
  std::vector<std::string> lines;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tcp") {
      tcp_port = std::stoi(value());
    } else if (arg == "--line") {
      lines.push_back(value());
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown flag " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (socket_path.empty() == (tcp_port < 0)) {
    usage(std::cerr);
    return 2;
  }

  const int fd = socket_path.empty() ? connect_tcp(tcp_port) : connect_unix(socket_path);
  if (fd < 0) {
    std::cerr << "error: cannot connect ("
              << (socket_path.empty() ? "tcp " + std::to_string(tcp_port)
                                      : socket_path)
              << "): " << std::strerror(errno) << "\n";
    return 1;
  }

  if (lines.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  }
  std::size_t pending = lines.size();
  for (const std::string& line : lines) {
    if (!send_all(fd, line + "\n")) {
      std::cerr << "error: send failed: " << std::strerror(errno) << "\n";
      ::close(fd);
      return 1;
    }
  }

  // Read until every request has its terminal line (or the server closes).
  bool any_error = false;
  std::string buffer;
  char chunk[4096];
  while (pending > 0) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // daemon closed (e.g. after a shutdown request)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      std::cout << line << "\n";
      bool is_error = false;
      if (is_terminal(line, is_error) && pending > 0) {
        --pending;
        any_error = any_error || is_error;
      }
    }
    buffer.erase(0, start);
  }
  std::cout.flush();
  ::close(fd);
  if (pending > 0) {
    std::cerr << "error: server closed with " << pending << " request(s) unanswered\n";
    return 1;
  }
  return any_error ? 1 : 0;
}
