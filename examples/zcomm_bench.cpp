// zcomm_bench: the perf archive's command line — record bench samples and
// run reports into an append-only JSON-lines history, query trends over it,
// gate fresh samples against like-for-like baselines, and render the whole
// archive as one self-contained HTML dashboard.
//
//   zcomm_bench record --archive=perf.jsonl BENCH_sweep.json rr.json
//   zcomm_bench record --archive=perf.jsonl --run "bench_sweep_scaling --jobs=4"
//   zcomm_bench trend  --archive=perf.jsonl --bench=sweep --metric=median_ns
//   zcomm_bench check  --archive=perf.jsonl fresh.json
//   zcomm_bench dashboard --archive=perf.jsonl --out=perf.html
//
// `record` ingests anything the repo emits: enveloped --bench-json captures
// keep their fingerprints and timestamps; bare payloads (run reports, the
// committed pre-envelope BENCH_*.json files) are wrapped on the way in —
// a v5 run report donates its own host block, anything older is honestly
// recorded as host "unknown" and never used as a gating baseline.
//
// `check` is the regression sentinel: each gateable metric of the fresh
// sample is compared against the median of its same-host-class history
// with a MAD noise band (trend.h). History recorded under other host
// classes is refused, not compared.
//
// Exit status (check): 0 ok/improved, 1 regression, 2 usage or I/O error,
// 3 refused (history exists only under other host classes), 4 no history
// for this bench at all. Other subcommands: 0 ok, 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <string>
#include <vector>

#include "src/archive/archive.h"
#include "src/archive/dashboard.h"
#include "src/archive/envelope.h"
#include "src/archive/trend.h"
#include "src/support/diag.h"
#include "src/support/io.h"
#include "src/support/json.h"

namespace {

using namespace zc;

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: zcomm_bench <command> [options] [files...]\n"
      "\n"
      "commands:\n"
      "  record     append samples to the archive\n"
      "  trend      per-(bench, metric, host-class) history table\n"
      "  check      gate a fresh sample against its archive baseline\n"
      "  dashboard  render the archive as one self-contained HTML file\n"
      "\n"
      "common options:\n"
      "  --archive=<path>      the JSON-lines archive file (required)\n"
      "  --bench=<substr>      only records whose bench label matches\n"
      "  --metric=<substr>     only metrics whose name matches\n"
      "  --host-class=<class>  record/check: override the sample's host\n"
      "                        class; trend: only series of this class\n"
      "\n"
      "record:\n"
      "  zcomm_bench record --archive=A [opts] <sample.json>...\n"
      "  zcomm_bench record --archive=A [opts] --run \"<bench cmd>\"\n"
      "  --run=<cmd>           run the command with --bench-json=<tmp>\n"
      "                        appended and ingest what it wrote\n"
      "  --now=<epoch>         timestamp injected into records that carry\n"
      "                        none (default: current time)\n"
      "  --git-sha=<sha>       stamp records that carry none\n"
      "\n"
      "check:\n"
      "  zcomm_bench check --archive=A [opts] <fresh.json>\n"
      "  --band-sigmas=<k>     noise band half-width in robust sigmas\n"
      "                        (default 3)\n"
      "  --rel-floor=<frac>    minimum half-band as a fraction of the\n"
      "                        baseline median (default 0.10)\n"
      "  --scale=<f>           deterministic regression injection: multiply\n"
      "                        the fresh sample's lower-is-better metrics\n"
      "                        (divide higher-is-better) before gating\n"
      "\n"
      "dashboard:\n"
      "  zcomm_bench dashboard --archive=A --out=<file.html> [--title=<t>]\n"
      "\n"
      "exit status: 0 ok, 1 regression, 2 usage or I/O error,\n"
      "             3 host-class refusal, 4 no baseline (check only)\n";
  std::exit(code);
}

struct Args {
  std::string command;
  std::string archive;
  std::string bench;
  std::string metric;
  std::string host_class;
  std::string run_cmd;
  std::string git_sha;
  std::string out;
  std::string title;
  long long now_unix = 0;
  double band_sigmas = 3.0;
  double rel_floor = 0.10;
  double scale = 1.0;
  std::vector<std::string> files;
};

bool take(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage(2);
  Args a;
  a.command = argv[1];
  if (a.command == "--help" || a.command == "-h") usage(0);
  std::string s;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    if (take(arg, "--archive", &a.archive) || take(arg, "--bench", &a.bench) ||
        take(arg, "--metric", &a.metric) || take(arg, "--host-class", &a.host_class) ||
        take(arg, "--run", &a.run_cmd) || take(arg, "--git-sha", &a.git_sha) ||
        take(arg, "--out", &a.out) || take(arg, "--title", &a.title)) {
      continue;
    }
    if (take(arg, "--now", &s)) {
      a.now_unix = std::atoll(s.c_str());
      if (a.now_unix <= 0) {
        std::cerr << "zcomm_bench: --now expects a positive epoch second\n";
        std::exit(2);
      }
      continue;
    }
    if (take(arg, "--band-sigmas", &s)) { a.band_sigmas = std::atof(s.c_str()); continue; }
    if (take(arg, "--rel-floor", &s)) { a.rel_floor = std::atof(s.c_str()); continue; }
    if (take(arg, "--scale", &s)) { a.scale = std::atof(s.c_str()); continue; }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "zcomm_bench: unknown option " << arg << "\n";
      usage(2);
    }
    a.files.push_back(arg);
  }
  if (a.archive.empty()) {
    std::cerr << "zcomm_bench: --archive=<path> is required\n";
    usage(2);
  }
  return a;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Parses one sample file: a single JSON document, or (an archive slice /
/// multi-sample capture) one document per line.
std::vector<json::Value> parse_samples(const std::string& path) {
  const std::string text = io::read_text_file(path);
  try {
    return {json::parse(text)};
  } catch (const Error&) {
    // Fall through to JSON-lines.
  }
  std::vector<json::Value> docs;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    docs.push_back(json::parse(line));  // throws with the real parse error
  }
  if (docs.empty()) throw Error(path + ": no JSON documents found");
  return docs;
}

archive::Envelope ingest_one(const json::Value& doc, const Args& a, long long now) {
  archive::Envelope e = archive::envelope_from_json(doc);
  if (e.unix_time == 0) e.unix_time = now;
  if (e.git_sha.empty()) e.git_sha = a.git_sha;
  if (!a.host_class.empty()) {
    e.host.forced_class = a.host_class;
    e.host.known = true;
  }
  return e;
}

int cmd_record(const Args& a) {
  if (a.files.empty() && a.run_cmd.empty()) {
    std::cerr << "zcomm_bench record: give sample files or --run=<cmd>\n";
    return 2;
  }
  const long long now =
      a.now_unix != 0 ? a.now_unix : static_cast<long long>(std::time(nullptr));
  const archive::Archive store(a.archive);

  std::vector<std::string> files = a.files;
  std::string capture;
  if (!a.run_cmd.empty()) {
    capture = a.archive + ".capture.json";
    const std::string cmd = a.run_cmd + " --bench-json=" + capture;
    std::cout << "running: " << cmd << "\n";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::cerr << "zcomm_bench record: bench command failed (status " << rc << ")\n";
      return 2;
    }
    files.push_back(capture);
  }

  int recorded = 0;
  for (const std::string& path : files) {
    for (const json::Value& doc : parse_samples(path)) {
      const archive::Envelope e = ingest_one(doc, a, now);
      store.append(e);
      ++recorded;
      std::cout << "recorded " << (e.bench.empty() ? e.kind : e.bench) << " ["
                << e.kind << "] host=" << e.host_class() << " metrics="
                << archive::extract_metrics(e).size()
                << (e.legacy ? " (legacy)" : "") << "\n";
    }
  }
  if (!capture.empty()) std::remove(capture.c_str());
  std::cout << recorded << " sample(s) -> " << a.archive << "\n";
  return 0;
}

int cmd_trend(const Args& a) {
  int skipped = 0;
  archive::Query q;
  q.bench = a.bench;
  q.host_class = a.host_class;
  const std::vector<archive::Envelope> records =
      archive::Archive(a.archive).select(q, &skipped);
  if (skipped > 0) {
    std::cerr << "zcomm_bench trend: skipped " << skipped << " unparseable line(s)\n";
  }
  const auto series = archive::build_series(records, a.metric);
  if (series.empty()) {
    std::cout << "no matching series in " << a.archive << " (" << records.size()
              << " record(s))\n";
    return 0;
  }
  std::printf("%-28s %-34s %-22s %4s %12s %22s %12s  %s\n", "bench", "metric",
              "host-class", "n", "median", "band", "latest", "trend");
  for (const auto& [key, s] : series) {
    std::vector<double> values;
    values.reserve(s.points.size());
    for (const auto& p : s.points) values.push_back(p.value);
    const archive::TrendStats st =
        archive::trend_stats(values, a.band_sigmas, a.rel_floor);
    const std::string band = "[" + fmt(st.band_low) + ", " + fmt(st.band_high) + "]";
    std::printf("%-28s %-34s %-22s %4d %12s %22s %12s  %s\n", key.bench.c_str(),
                key.metric.c_str(), key.host_class.c_str(), st.n,
                fmt(st.median).c_str(), band.c_str(), fmt(values.back()).c_str(),
                archive::sparkline(values).c_str());
  }
  std::cout << series.size() << " series over " << records.size() << " record(s)\n";
  return 0;
}

int cmd_check(const Args& a) {
  if (a.files.size() != 1) {
    std::cerr << "zcomm_bench check: give exactly one fresh sample file\n";
    return 2;
  }
  const std::vector<json::Value> docs = parse_samples(a.files[0]);
  if (docs.size() != 1) {
    std::cerr << "zcomm_bench check: " << a.files[0]
              << " holds " << docs.size() << " documents; give one sample\n";
    return 2;
  }
  const long long now =
      a.now_unix != 0 ? a.now_unix : static_cast<long long>(std::time(nullptr));
  const archive::Envelope fresh = ingest_one(docs[0], a, now);

  int skipped = 0;
  const std::vector<archive::Envelope> history =
      archive::Archive(a.archive).read_all(&skipped);
  if (skipped > 0) {
    std::cerr << "zcomm_bench check: skipped " << skipped << " unparseable line(s)\n";
  }

  archive::CheckOptions opts;
  opts.band_sigmas = a.band_sigmas;
  opts.rel_floor = a.rel_floor;
  opts.metric_filter = a.metric;
  opts.inject_scale = a.scale;
  const archive::CheckResult r = archive::check_sample(history, fresh, opts);

  std::cout << "check " << (r.bench.empty() ? "(unnamed bench)" : r.bench)
            << " @ host " << r.host_class << " against " << a.archive << "\n";
  for (const archive::MetricVerdict& m : r.metrics) {
    std::cout << "  " << archive::to_string(m.verdict) << "  " << m.metric << " = "
              << fmt(m.value);
    if (m.baseline.n > 0) {
      std::cout << "  baseline median " << fmt(m.baseline.median) << " band ["
                << fmt(m.baseline.band_low) << ", " << fmt(m.baseline.band_high)
                << "] n=" << m.baseline.n << "  delta "
                << fmt(m.delta_fraction() * 100.0) << "%";
    }
    std::cout << "\n";
  }
  if (r.refused > 0 && r.compared == 0) {
    std::cout << "refused: history for this bench exists only under other host"
                 " class(es):";
    for (const std::string& c : r.archive_classes) std::cout << " " << c;
    std::cout << "\n";
  }
  std::cout << "verdict: " << archive::to_string(r.overall()) << " (compared "
            << r.compared << ", regressions " << r.regressions << ", improvements "
            << r.improvements << ", no-baseline " << r.no_baseline << ", refused "
            << r.refused << ")\n";
  return r.exit_code();
}

int cmd_dashboard(const Args& a) {
  if (a.out.empty()) {
    std::cerr << "zcomm_bench dashboard: --out=<file.html> is required\n";
    return 2;
  }
  int skipped = 0;
  const std::vector<archive::Envelope> records =
      archive::Archive(a.archive).read_all(&skipped);
  if (skipped > 0) {
    std::cerr << "zcomm_bench dashboard: skipped " << skipped
              << " unparseable line(s)\n";
  }
  archive::DashboardOptions opts;
  if (!a.title.empty()) opts.title = a.title;
  opts.band_sigmas = a.band_sigmas;
  opts.rel_floor = a.rel_floor;
  io::write_text_file(a.out, archive::render_dashboard(records, opts));
  std::cout << "wrote " << a.out << " (" << records.size() << " record(s))\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  try {
    if (a.command == "record") return cmd_record(a);
    if (a.command == "trend") return cmd_trend(a);
    if (a.command == "check") return cmd_check(a);
    if (a.command == "dashboard") return cmd_dashboard(a);
  } catch (const zc::Error& e) {
    std::cerr << "zcomm_bench: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "zcomm_bench: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "zcomm_bench: unknown command '" << a.command << "'\n";
  usage(2);
}
