# Empty compiler generated dependencies file for comm_explorer.
# This may be replaced when dependencies are built.
