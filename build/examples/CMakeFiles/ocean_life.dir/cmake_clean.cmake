file(REMOVE_RECURSE
  "CMakeFiles/ocean_life.dir/ocean_life.cpp.o"
  "CMakeFiles/ocean_life.dir/ocean_life.cpp.o.d"
  "ocean_life"
  "ocean_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
