# Empty compiler generated dependencies file for ocean_life.
# This may be replaced when dependencies are built.
