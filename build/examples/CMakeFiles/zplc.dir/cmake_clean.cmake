file(REMOVE_RECURSE
  "CMakeFiles/zplc.dir/zplc.cpp.o"
  "CMakeFiles/zplc.dir/zplc.cpp.o.d"
  "zplc"
  "zplc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zplc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
