# Empty dependencies file for bench_table3_simple.
# This may be replaced when dependencies are built.
