file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_simple.dir/bench/bench_table3_simple.cpp.o"
  "CMakeFiles/bench_table3_simple.dir/bench/bench_table3_simple.cpp.o.d"
  "bench/bench_table3_simple"
  "bench/bench_table3_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
