file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_programs.dir/bench/bench_fig07_programs.cpp.o"
  "CMakeFiles/bench_fig07_programs.dir/bench/bench_fig07_programs.cpp.o.d"
  "bench/bench_fig07_programs"
  "bench/bench_fig07_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
