
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_paragon_suite.cpp" "CMakeFiles/bench_paragon_suite.dir/bench/bench_paragon_suite.cpp.o" "gcc" "CMakeFiles/bench_paragon_suite.dir/bench/bench_paragon_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/zc_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/zc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/programs/CMakeFiles/zc_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/zc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/zc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/zc_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/zir/CMakeFiles/zc_zir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/zc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ironman/CMakeFiles/zc_ironman.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
