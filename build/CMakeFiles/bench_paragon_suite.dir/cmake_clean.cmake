file(REMOVE_RECURSE
  "CMakeFiles/bench_paragon_suite.dir/bench/bench_paragon_suite.cpp.o"
  "CMakeFiles/bench_paragon_suite.dir/bench/bench_paragon_suite.cpp.o.d"
  "bench/bench_paragon_suite"
  "bench/bench_paragon_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paragon_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
