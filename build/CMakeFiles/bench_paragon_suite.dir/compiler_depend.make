# Empty compiler generated dependencies file for bench_paragon_suite.
# This may be replaced when dependencies are built.
