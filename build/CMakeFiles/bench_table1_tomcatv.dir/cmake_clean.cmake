file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tomcatv.dir/bench/bench_table1_tomcatv.cpp.o"
  "CMakeFiles/bench_table1_tomcatv.dir/bench/bench_table1_tomcatv.cpp.o.d"
  "bench/bench_table1_tomcatv"
  "bench/bench_table1_tomcatv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tomcatv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
