file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_knee.dir/bench/bench_abl_knee.cpp.o"
  "CMakeFiles/bench_abl_knee.dir/bench/bench_abl_knee.cpp.o.d"
  "bench/bench_abl_knee"
  "bench/bench_abl_knee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_knee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
