# Empty dependencies file for bench_abl_knee.
# This may be replaced when dependencies are built.
