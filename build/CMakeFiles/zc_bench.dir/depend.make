# Empty dependencies file for zc_bench.
# This may be replaced when dependencies are built.
