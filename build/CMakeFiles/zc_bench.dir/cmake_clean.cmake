file(REMOVE_RECURSE
  "CMakeFiles/zc_bench.dir/bench/common.cpp.o"
  "CMakeFiles/zc_bench.dir/bench/common.cpp.o.d"
  "libzc_bench.a"
  "libzc_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
