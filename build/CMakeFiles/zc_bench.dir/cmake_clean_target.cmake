file(REMOVE_RECURSE
  "libzc_bench.a"
)
