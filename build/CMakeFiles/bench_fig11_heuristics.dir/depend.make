# Empty dependencies file for bench_fig11_heuristics.
# This may be replaced when dependencies are built.
