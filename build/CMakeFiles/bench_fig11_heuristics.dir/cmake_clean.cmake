file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_heuristics.dir/bench/bench_fig11_heuristics.cpp.o"
  "CMakeFiles/bench_fig11_heuristics.dir/bench/bench_fig11_heuristics.cpp.o.d"
  "bench/bench_fig11_heuristics"
  "bench/bench_fig11_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
