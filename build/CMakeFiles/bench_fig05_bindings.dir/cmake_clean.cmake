file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_bindings.dir/bench/bench_fig05_bindings.cpp.o"
  "CMakeFiles/bench_fig05_bindings.dir/bench/bench_fig05_bindings.cpp.o.d"
  "bench/bench_fig05_bindings"
  "bench/bench_fig05_bindings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
