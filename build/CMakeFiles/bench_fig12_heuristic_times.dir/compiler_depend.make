# Empty compiler generated dependencies file for bench_fig12_heuristic_times.
# This may be replaced when dependencies are built.
