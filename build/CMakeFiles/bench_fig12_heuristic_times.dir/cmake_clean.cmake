file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_heuristic_times.dir/bench/bench_fig12_heuristic_times.cpp.o"
  "CMakeFiles/bench_fig12_heuristic_times.dir/bench/bench_fig12_heuristic_times.cpp.o.d"
  "bench/bench_fig12_heuristic_times"
  "bench/bench_fig12_heuristic_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_heuristic_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
