file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_shmem.dir/bench/bench_fig10b_shmem.cpp.o"
  "CMakeFiles/bench_fig10b_shmem.dir/bench/bench_fig10b_shmem.cpp.o.d"
  "bench/bench_fig10b_shmem"
  "bench/bench_fig10b_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
