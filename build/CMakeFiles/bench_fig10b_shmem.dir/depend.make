# Empty dependencies file for bench_fig10b_shmem.
# This may be replaced when dependencies are built.
