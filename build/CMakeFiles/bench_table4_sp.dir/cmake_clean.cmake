file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sp.dir/bench/bench_table4_sp.cpp.o"
  "CMakeFiles/bench_table4_sp.dir/bench/bench_table4_sp.cpp.o.d"
  "bench/bench_table4_sp"
  "bench/bench_table4_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
