# Empty compiler generated dependencies file for bench_table4_sp.
# This may be replaced when dependencies are built.
