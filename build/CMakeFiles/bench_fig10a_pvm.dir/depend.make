# Empty dependencies file for bench_fig10a_pvm.
# This may be replaced when dependencies are built.
