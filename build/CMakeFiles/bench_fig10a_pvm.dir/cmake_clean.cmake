file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_pvm.dir/bench/bench_fig10a_pvm.cpp.o"
  "CMakeFiles/bench_fig10a_pvm.dir/bench/bench_fig10a_pvm.cpp.o.d"
  "bench/bench_fig10a_pvm"
  "bench/bench_fig10a_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
