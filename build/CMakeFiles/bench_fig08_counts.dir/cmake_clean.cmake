file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_counts.dir/bench/bench_fig08_counts.cpp.o"
  "CMakeFiles/bench_fig08_counts.dir/bench/bench_fig08_counts.cpp.o.d"
  "bench/bench_fig08_counts"
  "bench/bench_fig08_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
