file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_interblock.dir/bench/bench_abl_interblock.cpp.o"
  "CMakeFiles/bench_abl_interblock.dir/bench/bench_abl_interblock.cpp.o.d"
  "bench/bench_abl_interblock"
  "bench/bench_abl_interblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_interblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
