# Empty dependencies file for bench_abl_interblock.
# This may be replaced when dependencies are built.
