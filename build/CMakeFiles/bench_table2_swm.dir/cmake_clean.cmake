file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_swm.dir/bench/bench_table2_swm.cpp.o"
  "CMakeFiles/bench_table2_swm.dir/bench/bench_table2_swm.cpp.o.d"
  "bench/bench_table2_swm"
  "bench/bench_table2_swm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_swm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
