file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_passes.dir/bench/bench_micro_passes.cpp.o"
  "CMakeFiles/bench_micro_passes.dir/bench/bench_micro_passes.cpp.o.d"
  "bench/bench_micro_passes"
  "bench/bench_micro_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
