# Empty compiler generated dependencies file for zir_test.
# This may be replaced when dependencies are built.
