file(REMOVE_RECURSE
  "CMakeFiles/zir_test.dir/zir_test.cpp.o"
  "CMakeFiles/zir_test.dir/zir_test.cpp.o.d"
  "zir_test"
  "zir_test.pdb"
  "zir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
