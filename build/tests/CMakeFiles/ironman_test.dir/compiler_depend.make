# Empty compiler generated dependencies file for ironman_test.
# This may be replaced when dependencies are built.
