file(REMOVE_RECURSE
  "CMakeFiles/ironman_test.dir/ironman_test.cpp.o"
  "CMakeFiles/ironman_test.dir/ironman_test.cpp.o.d"
  "ironman_test"
  "ironman_test.pdb"
  "ironman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
