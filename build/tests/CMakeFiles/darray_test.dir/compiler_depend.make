# Empty compiler generated dependencies file for darray_test.
# This may be replaced when dependencies are built.
