file(REMOVE_RECURSE
  "CMakeFiles/darray_test.dir/darray_test.cpp.o"
  "CMakeFiles/darray_test.dir/darray_test.cpp.o.d"
  "darray_test"
  "darray_test.pdb"
  "darray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
