file(REMOVE_RECURSE
  "CMakeFiles/interblock_test.dir/interblock_test.cpp.o"
  "CMakeFiles/interblock_test.dir/interblock_test.cpp.o.d"
  "interblock_test"
  "interblock_test.pdb"
  "interblock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
