# Empty compiler generated dependencies file for interblock_test.
# This may be replaced when dependencies are built.
