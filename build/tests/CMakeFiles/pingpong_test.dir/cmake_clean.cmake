file(REMOVE_RECURSE
  "CMakeFiles/pingpong_test.dir/pingpong_test.cpp.o"
  "CMakeFiles/pingpong_test.dir/pingpong_test.cpp.o.d"
  "pingpong_test"
  "pingpong_test.pdb"
  "pingpong_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pingpong_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
