# Empty dependencies file for intexpr_test.
# This may be replaced when dependencies are built.
