file(REMOVE_RECURSE
  "CMakeFiles/intexpr_test.dir/intexpr_test.cpp.o"
  "CMakeFiles/intexpr_test.dir/intexpr_test.cpp.o.d"
  "intexpr_test"
  "intexpr_test.pdb"
  "intexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
