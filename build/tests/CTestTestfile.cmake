# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/intexpr_test[1]_include.cmake")
include("/root/repo/build/tests/zir_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/darray_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/blocks_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/ironman_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/programs_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pingpong_test[1]_include.cmake")
include("/root/repo/build/tests/interblock_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
