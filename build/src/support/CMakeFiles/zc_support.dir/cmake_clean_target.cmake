file(REMOVE_RECURSE
  "libzc_support.a"
)
