# Empty compiler generated dependencies file for zc_support.
# This may be replaced when dependencies are built.
