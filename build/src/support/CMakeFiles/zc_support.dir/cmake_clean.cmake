file(REMOVE_RECURSE
  "CMakeFiles/zc_support.dir/chart.cpp.o"
  "CMakeFiles/zc_support.dir/chart.cpp.o.d"
  "CMakeFiles/zc_support.dir/csv.cpp.o"
  "CMakeFiles/zc_support.dir/csv.cpp.o.d"
  "CMakeFiles/zc_support.dir/diag.cpp.o"
  "CMakeFiles/zc_support.dir/diag.cpp.o.d"
  "CMakeFiles/zc_support.dir/str.cpp.o"
  "CMakeFiles/zc_support.dir/str.cpp.o.d"
  "CMakeFiles/zc_support.dir/table.cpp.o"
  "CMakeFiles/zc_support.dir/table.cpp.o.d"
  "libzc_support.a"
  "libzc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
