# Empty compiler generated dependencies file for zc_parser.
# This may be replaced when dependencies are built.
