file(REMOVE_RECURSE
  "CMakeFiles/zc_parser.dir/lexer.cpp.o"
  "CMakeFiles/zc_parser.dir/lexer.cpp.o.d"
  "CMakeFiles/zc_parser.dir/parser.cpp.o"
  "CMakeFiles/zc_parser.dir/parser.cpp.o.d"
  "libzc_parser.a"
  "libzc_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
