file(REMOVE_RECURSE
  "libzc_parser.a"
)
