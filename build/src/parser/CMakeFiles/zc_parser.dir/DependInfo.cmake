
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/lexer.cpp" "src/parser/CMakeFiles/zc_parser.dir/lexer.cpp.o" "gcc" "src/parser/CMakeFiles/zc_parser.dir/lexer.cpp.o.d"
  "/root/repo/src/parser/parser.cpp" "src/parser/CMakeFiles/zc_parser.dir/parser.cpp.o" "gcc" "src/parser/CMakeFiles/zc_parser.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zir/CMakeFiles/zc_zir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
