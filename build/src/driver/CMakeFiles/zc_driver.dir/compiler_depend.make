# Empty compiler generated dependencies file for zc_driver.
# This may be replaced when dependencies are built.
