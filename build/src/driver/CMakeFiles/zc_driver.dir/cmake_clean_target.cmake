file(REMOVE_RECURSE
  "libzc_driver.a"
)
