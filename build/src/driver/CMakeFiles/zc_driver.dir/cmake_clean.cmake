file(REMOVE_RECURSE
  "CMakeFiles/zc_driver.dir/driver.cpp.o"
  "CMakeFiles/zc_driver.dir/driver.cpp.o.d"
  "libzc_driver.a"
  "libzc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
