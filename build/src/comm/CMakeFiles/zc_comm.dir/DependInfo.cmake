
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/blocks.cpp" "src/comm/CMakeFiles/zc_comm.dir/blocks.cpp.o" "gcc" "src/comm/CMakeFiles/zc_comm.dir/blocks.cpp.o.d"
  "/root/repo/src/comm/interblock.cpp" "src/comm/CMakeFiles/zc_comm.dir/interblock.cpp.o" "gcc" "src/comm/CMakeFiles/zc_comm.dir/interblock.cpp.o.d"
  "/root/repo/src/comm/optimizer.cpp" "src/comm/CMakeFiles/zc_comm.dir/optimizer.cpp.o" "gcc" "src/comm/CMakeFiles/zc_comm.dir/optimizer.cpp.o.d"
  "/root/repo/src/comm/print.cpp" "src/comm/CMakeFiles/zc_comm.dir/print.cpp.o" "gcc" "src/comm/CMakeFiles/zc_comm.dir/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zir/CMakeFiles/zc_zir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
