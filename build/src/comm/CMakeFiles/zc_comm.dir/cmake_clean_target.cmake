file(REMOVE_RECURSE
  "libzc_comm.a"
)
