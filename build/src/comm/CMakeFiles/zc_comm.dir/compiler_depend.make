# Empty compiler generated dependencies file for zc_comm.
# This may be replaced when dependencies are built.
