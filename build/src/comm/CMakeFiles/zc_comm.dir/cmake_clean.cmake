file(REMOVE_RECURSE
  "CMakeFiles/zc_comm.dir/blocks.cpp.o"
  "CMakeFiles/zc_comm.dir/blocks.cpp.o.d"
  "CMakeFiles/zc_comm.dir/interblock.cpp.o"
  "CMakeFiles/zc_comm.dir/interblock.cpp.o.d"
  "CMakeFiles/zc_comm.dir/optimizer.cpp.o"
  "CMakeFiles/zc_comm.dir/optimizer.cpp.o.d"
  "CMakeFiles/zc_comm.dir/print.cpp.o"
  "CMakeFiles/zc_comm.dir/print.cpp.o.d"
  "libzc_comm.a"
  "libzc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
