file(REMOVE_RECURSE
  "libzc_runtime.a"
)
