
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/darray.cpp" "src/runtime/CMakeFiles/zc_runtime.dir/darray.cpp.o" "gcc" "src/runtime/CMakeFiles/zc_runtime.dir/darray.cpp.o.d"
  "/root/repo/src/runtime/eval.cpp" "src/runtime/CMakeFiles/zc_runtime.dir/eval.cpp.o" "gcc" "src/runtime/CMakeFiles/zc_runtime.dir/eval.cpp.o.d"
  "/root/repo/src/runtime/layout.cpp" "src/runtime/CMakeFiles/zc_runtime.dir/layout.cpp.o" "gcc" "src/runtime/CMakeFiles/zc_runtime.dir/layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zir/CMakeFiles/zc_zir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
