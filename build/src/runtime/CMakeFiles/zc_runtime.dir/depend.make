# Empty dependencies file for zc_runtime.
# This may be replaced when dependencies are built.
