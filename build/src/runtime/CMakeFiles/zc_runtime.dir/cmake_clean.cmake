file(REMOVE_RECURSE
  "CMakeFiles/zc_runtime.dir/darray.cpp.o"
  "CMakeFiles/zc_runtime.dir/darray.cpp.o.d"
  "CMakeFiles/zc_runtime.dir/eval.cpp.o"
  "CMakeFiles/zc_runtime.dir/eval.cpp.o.d"
  "CMakeFiles/zc_runtime.dir/layout.cpp.o"
  "CMakeFiles/zc_runtime.dir/layout.cpp.o.d"
  "libzc_runtime.a"
  "libzc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
