# CMake generated Testfile for 
# Source directory: /root/repo/src/ironman
# Build directory: /root/repo/build/src/ironman
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
