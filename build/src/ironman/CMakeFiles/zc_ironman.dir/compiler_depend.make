# Empty compiler generated dependencies file for zc_ironman.
# This may be replaced when dependencies are built.
