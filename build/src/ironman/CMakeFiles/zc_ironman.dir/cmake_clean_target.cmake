file(REMOVE_RECURSE
  "libzc_ironman.a"
)
