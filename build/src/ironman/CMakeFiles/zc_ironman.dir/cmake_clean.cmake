file(REMOVE_RECURSE
  "CMakeFiles/zc_ironman.dir/ironman.cpp.o"
  "CMakeFiles/zc_ironman.dir/ironman.cpp.o.d"
  "libzc_ironman.a"
  "libzc_ironman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_ironman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
