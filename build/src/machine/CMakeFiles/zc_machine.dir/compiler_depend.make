# Empty compiler generated dependencies file for zc_machine.
# This may be replaced when dependencies are built.
