file(REMOVE_RECURSE
  "libzc_machine.a"
)
