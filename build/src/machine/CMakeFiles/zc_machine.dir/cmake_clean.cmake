file(REMOVE_RECURSE
  "CMakeFiles/zc_machine.dir/model.cpp.o"
  "CMakeFiles/zc_machine.dir/model.cpp.o.d"
  "libzc_machine.a"
  "libzc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
