
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zir/builder.cpp" "src/zir/CMakeFiles/zc_zir.dir/builder.cpp.o" "gcc" "src/zir/CMakeFiles/zc_zir.dir/builder.cpp.o.d"
  "/root/repo/src/zir/intexpr.cpp" "src/zir/CMakeFiles/zc_zir.dir/intexpr.cpp.o" "gcc" "src/zir/CMakeFiles/zc_zir.dir/intexpr.cpp.o.d"
  "/root/repo/src/zir/printer.cpp" "src/zir/CMakeFiles/zc_zir.dir/printer.cpp.o" "gcc" "src/zir/CMakeFiles/zc_zir.dir/printer.cpp.o.d"
  "/root/repo/src/zir/program.cpp" "src/zir/CMakeFiles/zc_zir.dir/program.cpp.o" "gcc" "src/zir/CMakeFiles/zc_zir.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/zc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
