file(REMOVE_RECURSE
  "CMakeFiles/zc_zir.dir/builder.cpp.o"
  "CMakeFiles/zc_zir.dir/builder.cpp.o.d"
  "CMakeFiles/zc_zir.dir/intexpr.cpp.o"
  "CMakeFiles/zc_zir.dir/intexpr.cpp.o.d"
  "CMakeFiles/zc_zir.dir/printer.cpp.o"
  "CMakeFiles/zc_zir.dir/printer.cpp.o.d"
  "CMakeFiles/zc_zir.dir/program.cpp.o"
  "CMakeFiles/zc_zir.dir/program.cpp.o.d"
  "libzc_zir.a"
  "libzc_zir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_zir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
