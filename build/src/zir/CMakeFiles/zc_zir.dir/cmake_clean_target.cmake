file(REMOVE_RECURSE
  "libzc_zir.a"
)
