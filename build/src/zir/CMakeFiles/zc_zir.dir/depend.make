# Empty dependencies file for zc_zir.
# This may be replaced when dependencies are built.
