file(REMOVE_RECURSE
  "CMakeFiles/zc_programs.dir/kernels.cpp.o"
  "CMakeFiles/zc_programs.dir/kernels.cpp.o.d"
  "CMakeFiles/zc_programs.dir/programs.cpp.o"
  "CMakeFiles/zc_programs.dir/programs.cpp.o.d"
  "CMakeFiles/zc_programs.dir/simple.cpp.o"
  "CMakeFiles/zc_programs.dir/simple.cpp.o.d"
  "CMakeFiles/zc_programs.dir/sp.cpp.o"
  "CMakeFiles/zc_programs.dir/sp.cpp.o.d"
  "CMakeFiles/zc_programs.dir/swm.cpp.o"
  "CMakeFiles/zc_programs.dir/swm.cpp.o.d"
  "CMakeFiles/zc_programs.dir/tomcatv.cpp.o"
  "CMakeFiles/zc_programs.dir/tomcatv.cpp.o.d"
  "libzc_programs.a"
  "libzc_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
