# Empty dependencies file for zc_programs.
# This may be replaced when dependencies are built.
