
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/programs/kernels.cpp" "src/programs/CMakeFiles/zc_programs.dir/kernels.cpp.o" "gcc" "src/programs/CMakeFiles/zc_programs.dir/kernels.cpp.o.d"
  "/root/repo/src/programs/programs.cpp" "src/programs/CMakeFiles/zc_programs.dir/programs.cpp.o" "gcc" "src/programs/CMakeFiles/zc_programs.dir/programs.cpp.o.d"
  "/root/repo/src/programs/simple.cpp" "src/programs/CMakeFiles/zc_programs.dir/simple.cpp.o" "gcc" "src/programs/CMakeFiles/zc_programs.dir/simple.cpp.o.d"
  "/root/repo/src/programs/sp.cpp" "src/programs/CMakeFiles/zc_programs.dir/sp.cpp.o" "gcc" "src/programs/CMakeFiles/zc_programs.dir/sp.cpp.o.d"
  "/root/repo/src/programs/swm.cpp" "src/programs/CMakeFiles/zc_programs.dir/swm.cpp.o" "gcc" "src/programs/CMakeFiles/zc_programs.dir/swm.cpp.o.d"
  "/root/repo/src/programs/tomcatv.cpp" "src/programs/CMakeFiles/zc_programs.dir/tomcatv.cpp.o" "gcc" "src/programs/CMakeFiles/zc_programs.dir/tomcatv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/zc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
