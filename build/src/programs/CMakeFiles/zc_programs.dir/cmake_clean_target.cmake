file(REMOVE_RECURSE
  "libzc_programs.a"
)
