
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/zc_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/ping.cpp" "src/sim/CMakeFiles/zc_sim.dir/ping.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/ping.cpp.o.d"
  "/root/repo/src/sim/transport.cpp" "src/sim/CMakeFiles/zc_sim.dir/transport.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/zc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/zc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/zc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ironman/CMakeFiles/zc_ironman.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/zir/CMakeFiles/zc_zir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
