file(REMOVE_RECURSE
  "CMakeFiles/zc_sim.dir/engine.cpp.o"
  "CMakeFiles/zc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/zc_sim.dir/ping.cpp.o"
  "CMakeFiles/zc_sim.dir/ping.cpp.o.d"
  "CMakeFiles/zc_sim.dir/transport.cpp.o"
  "CMakeFiles/zc_sim.dir/transport.cpp.o.d"
  "libzc_sim.a"
  "libzc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
