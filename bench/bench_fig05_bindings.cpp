// Reproduces Figure 5: the IRONMAN bindings on the Paragon and the T3D.
#include <iostream>

#include "bench/common.h"
#include "src/ironman/ironman.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 5", "IRONMAN bindings on the Paragon and T3D", options);

  Table t({"program state", "call", "nx message passing", "nx asynchronous", "nx callback",
           "pvm", "shmem"});
  for (std::size_t c = 1; c < 7; ++c) t.set_align(c, Align::kLeft);

  const std::pair<const char*, ironman::IronmanCall> calls[] = {
      {"destination ready", ironman::IronmanCall::kDR},
      {"source ready", ironman::IronmanCall::kSR},
      {"destination needed", ironman::IronmanCall::kDN},
      {"source volatile", ironman::IronmanCall::kSV},
  };
  for (const auto& [state, call] : calls) {
    t.add_row({state, ironman::to_string(call),
               ironman::to_string(ironman::binding(ironman::CommLibrary::kNXSync, call)),
               ironman::to_string(ironman::binding(ironman::CommLibrary::kNXAsync, call)),
               ironman::to_string(ironman::binding(ironman::CommLibrary::kNXCallback, call)),
               ironman::to_string(ironman::binding(ironman::CommLibrary::kPVM, call)),
               ironman::to_string(ironman::binding(ironman::CommLibrary::kSHMEM, call))});
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Paper Figure 5 for comparison: DR/SR/DN/SV -> no-op/csend/crecv/no-op (NX),\n"
               "irecv/isend/msgwait/msgwait (async), hprobe/hsend/hrecv/msgwait (callback),\n"
               "no-op/pvm_send/pvm_recv/no-op (PVM), synch/shmem_put/synch/no-op (SHMEM).\n";
  return 0;
}
