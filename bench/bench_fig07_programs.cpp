// Reproduces Figure 7: the experimental benchmark programs. The paper
// reports final-output C line counts; we report the mini-ZPL source size
// and the compiled statement/communication structure instead (our compiler
// interprets ZIR directly rather than emitting C).
#include <iostream>

#include "bench/common.h"
#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/support/str.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 7", "experimental benchmark programs", options);

  Table t({"program", "description", "source lines", "statements", "arrays",
           "procedures", "baseline comms"});
  t.set_align(1, Align::kLeft);

  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const comm::CommPlan plan = comm::plan_communication(
        p, comm::OptOptions::for_level(comm::OptLevel::kBaseline));
    long long lines = 0;
    for (char ch : info.source) lines += ch == '\n' ? 1 : 0;
    RowBuilder rb;
    rb.cell(info.name)
        .cell(info.description)
        .cell(lines)
        .cell(static_cast<long long>(p.stmt_count()))
        .cell(static_cast<long long>(p.array_count()))
        .cell(static_cast<long long>(p.proc_count()))
        .cell(static_cast<long long>(plan.static_count()));
    t.add_row(std::move(rb).build());
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Paper Figure 7 line counts (final output C, excluding communication):\n"
               "  tomcatv 598, swm 1570, simple 2293, sp 7866.\n";
  return 0;
}
