// Reproduces Figure 7: the experimental benchmark programs. The paper
// reports final-output C line counts; we report the mini-ZPL source size
// and the compiled statement/communication structure instead (our compiler
// interprets ZIR directly rather than emitting C).
#include <iostream>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/comm/optimizer.h"
#include "src/exec/plan_cache.h"
#include "src/exec/pool.h"
#include "src/support/str.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 7", "experimental benchmark programs", options);

  Table t({"program", "description", "source lines", "statements", "arrays",
           "procedures", "baseline comms"});
  t.set_align(1, Align::kLeft);

  // Fan the per-program baseline planning across the pool; each program
  // parses once (bench::parsed_program) and its plan memoizes in the
  // process-wide cache. Rows collect by submission slot, so the table is
  // identical at any --jobs value.
  const auto& suite = programs::benchmark_suite();
  std::vector<std::shared_ptr<const zir::Program>> parsed(suite.size());
  std::vector<std::shared_ptr<const comm::CommPlan>> plans(suite.size());
  exec::ThreadPool pool(options.jobs == 0 ? exec::ThreadPool::hardware_jobs() : options.jobs);
  pool.run(suite.size(), [&](std::size_t i) {
    parsed[i] = bench::parsed_program(suite[i]);
    plans[i] = exec::PlanCache::process().get_or_plan(
        *parsed[i], comm::OptOptions::for_level(comm::OptLevel::kBaseline));
  });

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& info = suite[i];
    const zir::Program& p = *parsed[i];
    long long lines = 0;
    for (char ch : info.source) lines += ch == '\n' ? 1 : 0;
    RowBuilder rb;
    rb.cell(info.name)
        .cell(info.description)
        .cell(lines)
        .cell(static_cast<long long>(p.stmt_count()))
        .cell(static_cast<long long>(p.array_count()))
        .cell(static_cast<long long>(p.proc_count()))
        .cell(static_cast<long long>(plans[i]->static_count()));
    t.add_row(std::move(rb).build());
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Paper Figure 7 line counts (final output C, excluding communication):\n"
               "  tomcatv 598, swm 1570, simple 2293, sp 7866.\n";
  return 0;
}
