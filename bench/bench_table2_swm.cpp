// Reproduces Appendix Table 2: results for 512x512 swm on 64 processors.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  using zc::bench::PaperRow;
  const std::vector<PaperRow> paper = {
      {"baseline", 29, 8602, 6.809007},
      {"rr", 22, 7202, 6.323369},
      {"cc", 16, 6002, 6.191816},
      {"pl", 16, 6002, 5.922135},
      {"pl with shmem", 16, 6002, 5.454957},
      {"pl with max latency", 16, 6002, 5.477305},
  };
  return zc::bench::run_appendix_table(argc, argv, "Table 2", "swm", paper);
}
