// Shared infrastructure for the bench harnesses that regenerate the paper's
// tables and figures.
//
// Every harness accepts:
//   --paper        run at the paper's full problem scale (slower; the
//                  default uses the same spatial sizes with fewer
//                  iterations — counts scale linearly, shapes identical)
//   --procs=N      processor count (default 64, the paper's partitions)
//   --csv=PATH     also dump machine-readable results
//   --bench-json=PATH / --no-bench-json
//                  perf-sample JSON (default BENCH_<name>.json in the
//                  working directory, <name> from argv[0]); each run is
//                  sampled and written at exit as median/p10/p90 ns,
//                  wrapped in the perf-archive envelope (src/archive) so
//                  every harness's output is archive-ingestible
//   --archive=PATH also append the enveloped sample to the JSON-lines
//                  perf archive at PATH (the BENCH file bytes are
//                  identical with or without this flag)
//   --now=EPOCH    inject the envelope timestamp (seconds since the
//                  epoch; default: the current time) — the seam that
//                  keeps envelope output reproducible under test
//   --git-sha=SHA  stamp the envelope with the source revision
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/driver/driver.h"
#include "src/programs/programs.h"
#include "src/support/csv.h"
#include "src/support/json.h"

namespace zc::bench {

struct Options {
  bool paper_scale = false;
  int procs = 64;
  /// Worker contexts for the sweep scheduler the grid runs fan out on
  /// (--jobs=N; 1 = serial, 0 = hardware concurrency). Results are
  /// bit-identical at any value — see src/exec/sweep.h.
  int jobs = 1;
  std::optional<std::string> csv_path;
  std::string bench_name;                     ///< argv[0] basename, "bench_" stripped
  std::optional<std::string> bench_json_path; ///< none = --no-bench-json
  std::optional<std::string> archive_path;    ///< --archive: append envelope here too
  long long now_unix = 0;                     ///< --now override (0 = wall clock)
  std::string git_sha;                        ///< --git-sha, "" = unstamped
};

/// Parses the common flags; exits with a usage message on unknown flags.
Options parse_options(int argc, char** argv);

/// The problem configuration a harness should run: paper scale or the
/// bench default (paper sizes, reduced iteration counts).
std::map<std::string, long long> scale_for(const programs::BenchmarkInfo& info,
                                           const Options& options);

/// A short human-readable label like "128x128, 30 iterations".
std::string scale_label(const programs::BenchmarkInfo& info, const Options& options);

/// One benchmark x experiment result row.
struct Row {
  std::string benchmark;
  std::string experiment;
  int static_count = 0;
  long long dynamic_count = 0;
  double execution_time = 0.0;
};

/// Runs the named paper experiments (Figure 9 keys) for one benchmark
/// through the sweep scheduler (options.jobs workers; plans memoized in the
/// process-wide PlanCache). Results are cached per (benchmark, experiment)
/// within the process, and the source parses once per benchmark no matter
/// how many figures run it.
std::vector<Row> run_experiments(const programs::BenchmarkInfo& info,
                                 const std::vector<std::string>& experiment_names,
                                 const Options& options);

/// The per-process parsed program for `info` (parse once, reuse across
/// every figure and option set in the binary).
std::shared_ptr<const zir::Program> parsed_program(const programs::BenchmarkInfo& info);

/// Prints the standard harness header: what this binary reproduces.
void print_header(const std::string& figure, const std::string& caption,
                  const Options& options);

/// Writes rows as CSV if --csv was given.
void maybe_write_csv(const std::vector<Row>& rows, const Options& options);

/// The shared envelope writer every harness's --bench-json path routes
/// through: wraps `payload` in a perf-archive envelope (host + build
/// fingerprints, --now/--git-sha stamps), writes it to
/// options.bench_json_path, and — when --archive was given — appends the
/// same envelope to the archive. The BENCH file bytes do not depend on
/// whether archiving is on. No-op when --no-bench-json.
void write_bench_json(const json::Value& payload, const Options& options);

/// value / baseline as a fraction; NaN if baseline is missing or zero.
double scaled(const std::vector<Row>& rows, const std::string& experiment, double Row::*field);

}  // namespace zc::bench
