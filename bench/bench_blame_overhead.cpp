// Guard benchmark for the attribution engine's cost, mirroring
// bench_trace_overhead one layer up: attribution is pure post-processing on
// a Recorder, so the engine numbers with attribution "off" are by
// construction the tracing-off/on numbers next door — what this binary
// guards is the analysis itself. Blame, the critical-path walk, and the
// differential join should all stay linear in the trace and far below the
// cost of the traced run that produced it.
#include <benchmark/benchmark.h>

#include "src/analysis/blame.h"
#include "src/analysis/critpath.h"
#include "src/analysis/diff.h"
#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"
#include "src/trace/recorder.h"

namespace {

using namespace zc;

const zir::Program& jacobi_program() {
  static const zir::Program p = parser::parse_program(programs::kernel_source("jacobi"));
  return p;
}

const comm::CommPlan& jacobi_plan(comm::OptLevel level) {
  static const comm::CommPlan baseline = comm::plan_communication(
      jacobi_program(), comm::OptOptions::for_level(comm::OptLevel::kBaseline));
  static const comm::CommPlan pl = comm::plan_communication(
      jacobi_program(), comm::OptOptions::for_level(comm::OptLevel::kPL));
  return level == comm::OptLevel::kBaseline ? baseline : pl;
}

sim::RunConfig jacobi_config(int procs) {
  sim::RunConfig cfg;
  cfg.procs = procs;
  cfg.config_overrides = {{"n", 64}, {"iters", 4}};
  return cfg;
}

const trace::Recorder& traced_run(comm::OptLevel level) {
  static trace::Recorder baseline = [] {
    trace::Recorder rec(16);
    sim::RunConfig cfg = jacobi_config(16);
    cfg.recorder = &rec;
    sim::run_program(jacobi_program(), jacobi_plan(comm::OptLevel::kBaseline), cfg);
    return rec;
  }();
  static trace::Recorder pl = [] {
    trace::Recorder rec(16);
    sim::RunConfig cfg = jacobi_config(16);
    cfg.recorder = &rec;
    sim::run_program(jacobi_program(), jacobi_plan(comm::OptLevel::kPL), cfg);
    return rec;
  }();
  return level == comm::OptLevel::kBaseline ? baseline : pl;
}

void BM_ComputeBlame(benchmark::State& state) {
  const trace::Recorder& rec = traced_run(comm::OptLevel::kPL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_blame(
        rec, jacobi_program(), jacobi_plan(comm::OptLevel::kPL)));
  }
}
BENCHMARK(BM_ComputeBlame);

void BM_ComputeCriticalPath(benchmark::State& state) {
  const trace::Recorder& rec = traced_run(comm::OptLevel::kPL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_critical_path(
        rec, jacobi_program(), jacobi_plan(comm::OptLevel::kPL)));
  }
}
BENCHMARK(BM_ComputeCriticalPath);

void BM_DiffBlame(benchmark::State& state) {
  const analysis::BlameReport before = analysis::compute_blame(
      traced_run(comm::OptLevel::kBaseline), jacobi_program(),
      jacobi_plan(comm::OptLevel::kBaseline));
  const analysis::BlameReport after = analysis::compute_blame(
      traced_run(comm::OptLevel::kPL), jacobi_program(), jacobi_plan(comm::OptLevel::kPL));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::diff_blame(before, after));
  }
}
BENCHMARK(BM_DiffBlame);

void BM_BlameToJson(benchmark::State& state) {
  const analysis::BlameReport report = analysis::compute_blame(
      traced_run(comm::OptLevel::kPL), jacobi_program(), jacobi_plan(comm::OptLevel::kPL));
  for (auto _ : state) {
    benchmark::DoNotOptimize(report.to_json().dump());
  }
}
BENCHMARK(BM_BlameToJson);

}  // namespace

BENCHMARK_MAIN();
