// Reproduces Figure 12: comparison of the combining heuristics at run time
// ("pl with shmem" vs. "pl with max latency", scaled to baseline). The
// paper could not run SP's max-latency version ("a bug in the library
// code"); we run it and report the value.
#include <iostream>

#include "bench/common.h"
#include "src/support/chart.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 12", "combining heuristics at run time (SHMEM)", options);

  BarChart chart("Execution time (fraction of baseline)",
                 {"max combining", "max latency hiding"});
  Table t({"program", "heuristic", "time (s)", "scaled"});
  t.set_align(1, Align::kLeft);

  std::vector<bench::Row> all;
  for (const auto& info : programs::benchmark_suite()) {
    const auto rows = bench::run_experiments(
        info, {"baseline", "pl with shmem", "pl with max latency"}, options);
    const double base = rows[0].execution_time;
    const char* labels[] = {"(baseline)", "max combining", "max latency hiding"};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      RowBuilder rb;
      rb.cell(rows[i].benchmark)
          .cell(labels[i])
          .cell(rows[i].execution_time, 6)
          .percent_cell(rows[i].execution_time, base);
      t.add_row(std::move(rb).build());
      all.push_back(rows[i]);
    }
    t.add_separator();
    chart.add_group(info.name + " (" + bench::scale_label(info, options) + ")",
                    {rows[1].execution_time / base, rows[2].execution_time / base});
  }

  std::cout << t.to_string() << "\n" << chart.to_string() << "\n";
  std::cout
      << "Paper Figure 12: the versions compiled for maximized combining always ran\n"
         "faster than those compiled for maximized latency hiding. (The paper could\n"
         "not run SP's max-latency version due to a library bug; the row above fills\n"
         "in that cell.) TOMCATV under max latency still beats plain rr — each\n"
         "optimization contributes.\n";
  bench::maybe_write_csv(all, options);
  return 0;
}
