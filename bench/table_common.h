// Shared implementation for the appendix-table harnesses (Tables 1-4):
// each prints static count, dynamic count, and execution time for all six
// Figure 9 experiments on one benchmark, next to the paper's values.
#pragma once

#include <iostream>

#include "bench/common.h"
#include "src/support/table.h"

namespace zc::bench {

struct PaperRow {
  const char* experiment;
  long long static_count;
  long long dynamic_count;
  double execution_time;  ///< < 0 means the paper could not run the cell
};

inline int run_appendix_table(int argc, char** argv, const std::string& table_name,
                              const std::string& benchmark,
                              const std::vector<PaperRow>& paper_rows) {
  const Options options = parse_options(argc, argv);
  const auto& info = programs::benchmark(benchmark);
  print_header(table_name,
               "results for " + info.size_label + " " + benchmark + " (" +
                   scale_label(info, options) + ")",
               options);

  const std::vector<std::string> names = {"baseline",      "rr", "cc", "pl",
                                          "pl with shmem", "pl with max latency"};
  const auto rows = run_experiments(info, names, options);

  Table t({"experiment", "static", "dynamic", "time (s)", "scaled time", "paper static",
           "paper dynamic", "paper time (s)", "paper scaled"});
  const double base_time = rows[0].execution_time;
  const double paper_base_time = paper_rows[0].execution_time;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    RowBuilder rb;
    rb.cell(rows[i].experiment)
        .cell(static_cast<long long>(rows[i].static_count))
        .cell(rows[i].dynamic_count)
        .cell(rows[i].execution_time, 6)
        .percent_cell(rows[i].execution_time, base_time)
        .cell(paper_rows[i].static_count)
        .cell(paper_rows[i].dynamic_count);
    if (paper_rows[i].execution_time >= 0) {
      rb.cell(paper_rows[i].execution_time, 6)
          .percent_cell(paper_rows[i].execution_time, paper_base_time);
    } else {
      rb.cell("n/a (paper bug)").cell("n/a");
    }
    t.add_row(std::move(rb).build());
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Absolute values are not comparable (simulated machine, different\n"
               "iteration counts); compare the scaled-time columns and count ratios.\n";
  maybe_write_csv(rows, options);
  return 0;
}

}  // namespace zc::bench
