// Reproduces Figure 6: exposed communication costs for the five
// communication primitives on the Cray T3D and Intel Paragon — the §3.2
// two-node synthetic ping (10000 repetitions, busy loops hiding the
// transmission time). Also prints the Figure 3 machine-parameter table and
// the measured knee (paper: "about 512 doubles / 4K bytes").
#include <iostream>

#include "bench/common.h"
#include "src/sim/ping.h"
#include "src/support/chart.h"
#include "src/support/str.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 6 (and Figure 3)",
                      "exposed communication costs vs. message size", options);

  // Figure 3: machine parameters.
  {
    Table t({"machine", "communication library", "timer granularity"});
    t.set_align(1, Align::kLeft);
    t.add_row({"Intel Paragon 50 MHz", "NX (message passing)", "~100 ns"});
    t.add_row({"Cray T3D 150 MHz", "PVM (message passing), SHMEM (shared memory)", "~150 ns"});
    std::cout << t.to_string() << "\n";
  }

  const auto sizes = sim::default_ping_sizes();
  const int reps = options.paper_scale ? 10000 : 2000;

  struct Config {
    const char* name;
    machine::MachineModel model;
    ironman::CommLibrary library;
  };
  const Config configs[] = {
      {"t3d pvm", machine::t3d_model(), ironman::CommLibrary::kPVM},
      {"t3d shmem", machine::t3d_model(), ironman::CommLibrary::kSHMEM},
      {"paragon csend/crecv", machine::paragon_model(), ironman::CommLibrary::kNXSync},
      {"paragon isend/irecv", machine::paragon_model(), ironman::CommLibrary::kNXAsync},
      {"paragon hsend/hrecv", machine::paragon_model(), ironman::CommLibrary::kNXCallback},
  };

  SeriesChart chart("Exposed communication cost (two-node ping, busy loops hide transmission)",
                    "message size (doubles)", "exposed cost per message (us)");
  Table t({"size (doubles)", "t3d pvm", "t3d shmem", "paragon csend", "paragon isend",
           "paragon hsend"});

  std::vector<sim::PingResult> results;
  for (const Config& c : configs) {
    results.push_back(sim::run_ping(c.model, c.library, sizes, reps));
    std::vector<double> xs;
    std::vector<double> ys;
    for (const sim::PingPoint& pt : results.back().points) {
      xs.push_back(static_cast<double>(pt.doubles));
      ys.push_back(pt.exposed * 1e6);
    }
    chart.add_series(c.name, xs, ys);
  }

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    RowBuilder rb;
    rb.cell(static_cast<long long>(sizes[i]));
    for (const sim::PingResult& r : results) rb.cell(r.points[i].exposed * 1e6, 2);
    t.add_row(std::move(rb).build());
  }
  std::cout << t.to_string() << "\n(all costs in microseconds per message)\n\n";
  std::cout << chart.to_string() << "\n";

  std::cout << "Knee (overhead doubles from its small-message floor):\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cout << "  " << str::pad_right(configs[i].name, 22) << " "
              << results[i].knee_doubles() << " doubles ("
              << results[i].knee_doubles() * 8 << " bytes)\n";
  }
  std::cout << "\nPaper §3.2: the knee is at about 512 doubles (4K bytes) on both machines;\n"
               "SHMEM overhead ~10% below PVM; the Paragon asynchronous primitives do not\n"
               "reduce the exposed overhead (isend/irecv) or increase it (hsend/hrecv).\n";
  return 0;
}
