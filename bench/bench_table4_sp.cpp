// Reproduces Appendix Table 4: results for 16x16x16 sp on 64 processors.
// The paper's "pl with max latency" execution-time cell is empty ("a bug in
// the library code which will be fixed by the final paper"); our harness
// runs the configuration and fills it in.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  using zc::bench::PaperRow;
  const std::vector<PaperRow> paper = {
      {"baseline", 212, 85982, 22.572110},
      {"rr", 114, 70094, 20.381131},
      {"cc", 84, 44286, 19.274767},
      {"pl", 84, 44286, 18.149760},
      {"pl with shmem", 84, 44286, 19.079338},
      {"pl with max latency", 92, 53487, -1.0},  // the missing cell
  };
  return zc::bench::run_appendix_table(argc, argv, "Table 4", "sp", paper);
}
