// Reproduces Figure 11: reduction in the number of communications under
// the two combining heuristics — maximize combining vs. maximize latency
// hiding — static and dynamic counts scaled to the baseline.
#include <iostream>

#include "bench/common.h"
#include "src/support/chart.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 11",
                      "communication counts under the two combining heuristics", options);

  BarChart static_chart("Static counts (fraction of baseline)",
                        {"max combining", "max latency hiding"});
  BarChart dynamic_chart("Dynamic counts (fraction of baseline)",
                         {"max combining", "max latency hiding"});
  Table t({"program", "heuristic", "static", "static %", "dynamic", "dynamic %"});
  t.set_align(1, Align::kLeft);

  std::vector<bench::Row> all;
  for (const auto& info : programs::benchmark_suite()) {
    const auto rows = bench::run_experiments(
        info, {"baseline", "pl with shmem", "pl with max latency"}, options);
    const bench::Row& base = rows[0];
    const char* labels[] = {"(baseline)", "max combining", "max latency hiding"};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      RowBuilder rb;
      rb.cell(rows[i].benchmark)
          .cell(labels[i])
          .cell(static_cast<long long>(rows[i].static_count))
          .percent_cell(rows[i].static_count, base.static_count)
          .cell(rows[i].dynamic_count)
          .percent_cell(static_cast<double>(rows[i].dynamic_count),
                        static_cast<double>(base.dynamic_count));
      t.add_row(std::move(rb).build());
      all.push_back(rows[i]);
    }
    t.add_separator();
    static_chart.add_group(
        info.name, {static_cast<double>(rows[1].static_count) / base.static_count,
                    static_cast<double>(rows[2].static_count) / base.static_count});
    dynamic_chart.add_group(
        info.name,
        {static_cast<double>(rows[1].dynamic_count) / static_cast<double>(base.dynamic_count),
         static_cast<double>(rows[2].dynamic_count) / static_cast<double>(base.dynamic_count)});
  }

  std::cout << t.to_string() << "\n";
  std::cout << static_chart.to_string() << "\n" << dynamic_chart.to_string() << "\n";
  std::cout << "Paper Figure 11: maximizing latency hiding can significantly increase\n"
               "both counts; for TOMCATV the dynamic count equals plain redundant-removal\n"
               "(97% of baseline) — no combination survives the window-preservation rule.\n";
  bench::maybe_write_csv(all, options);
  return 0;
}
