// Guard benchmark for the trace subsystem's cost: engine throughput with
// tracing off (the default, which must stay free) vs. on (bounded recording
// of every call, message, compute span, and barrier). Run both and compare;
// future PRs touching the recorder should keep the "on" overhead modest and
// the "off" numbers unchanged within noise.
#include <benchmark/benchmark.h>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"
#include "src/trace/recorder.h"
#include "src/trace/stats.h"

namespace {

using namespace zc;

const zir::Program& jacobi_program() {
  static const zir::Program p = parser::parse_program(programs::kernel_source("jacobi"));
  return p;
}

const comm::CommPlan& jacobi_plan() {
  static const comm::CommPlan plan =
      comm::plan_communication(jacobi_program(), comm::OptOptions::for_level(comm::OptLevel::kPL));
  return plan;
}

sim::RunConfig jacobi_config(int procs) {
  sim::RunConfig cfg;
  cfg.procs = procs;
  cfg.config_overrides = {{"n", 64}, {"iters", 4}};
  return cfg;
}

void BM_EngineTracingOff(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_program(jacobi_program(), jacobi_plan(),
                                              jacobi_config(procs)));
  }
}
BENCHMARK(BM_EngineTracingOff)->Arg(16)->Arg(64);

void BM_EngineTracingOn(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    trace::Recorder recorder(procs);
    sim::RunConfig cfg = jacobi_config(procs);
    cfg.recorder = &recorder;
    benchmark::DoNotOptimize(sim::run_program(jacobi_program(), jacobi_plan(), cfg));
    benchmark::DoNotOptimize(recorder.total_messages());
  }
}
BENCHMARK(BM_EngineTracingOn)->Arg(16)->Arg(64);

void BM_RecorderRecordCall(benchmark::State& state) {
  trace::Recorder recorder(1, {/*max_events_per_proc=*/1 << 20, /*max_messages=*/1});
  double t = 0.0;
  for (auto _ : state) {
    recorder.record_call(0, ironman::IronmanCall::kSR, ironman::Primitive::kPvmSend,
                         /*chan=*/1, /*transfer=*/0, /*src=*/0, /*dst=*/1, /*bytes=*/1024,
                         t, t, t + 1e-6);
    t += 2e-6;
  }
  benchmark::DoNotOptimize(recorder.call_totals());
}
BENCHMARK(BM_RecorderRecordCall);

void BM_ComputeStats(benchmark::State& state) {
  trace::Recorder recorder(16);
  sim::RunConfig cfg = jacobi_config(16);
  cfg.recorder = &recorder;
  sim::run_program(jacobi_program(), jacobi_plan(), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::compute_stats(recorder));
  }
}
BENCHMARK(BM_ComputeStats);

}  // namespace

BENCHMARK_MAIN();
