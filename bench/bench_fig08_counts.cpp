// Reproduces Figure 8: reduction in the number of communications due to
// redundant communication removal and communication combination — static
// and dynamic counts scaled to the baseline, for all four benchmarks.
#include <iostream>

#include "bench/common.h"
#include "src/support/chart.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 8",
                      "communication counts under rr and cc, scaled to baseline", options);

  BarChart static_chart("Static communication counts (fraction of baseline)", {"rr", "cc"});
  BarChart dynamic_chart("Dynamic communication counts (fraction of baseline)", {"rr", "cc"});
  Table t({"program", "experiment", "static", "static %", "dynamic", "dynamic %"});
  t.set_align(1, Align::kLeft);

  std::vector<bench::Row> all;
  for (const auto& info : programs::benchmark_suite()) {
    const auto rows = bench::run_experiments(info, {"baseline", "rr", "cc"}, options);
    const bench::Row& base = rows[0];
    for (const bench::Row& r : rows) {
      RowBuilder rb;
      rb.cell(r.benchmark + " (" + bench::scale_label(info, options) + ")")
          .cell(r.experiment)
          .cell(static_cast<long long>(r.static_count))
          .percent_cell(r.static_count, base.static_count)
          .cell(r.dynamic_count)
          .percent_cell(static_cast<double>(r.dynamic_count),
                        static_cast<double>(base.dynamic_count));
      t.add_row(std::move(rb).build());
      all.push_back(r);
    }
    t.add_separator();
    static_chart.add_group(
        info.name,
        {static_cast<double>(rows[1].static_count) / base.static_count,
         static_cast<double>(rows[2].static_count) / base.static_count});
    dynamic_chart.add_group(
        info.name,
        {static_cast<double>(rows[1].dynamic_count) / static_cast<double>(base.dynamic_count),
         static_cast<double>(rows[2].dynamic_count) / static_cast<double>(base.dynamic_count)});
  }

  std::cout << t.to_string() << "\n";
  std::cout << static_chart.to_string() << "\n" << dynamic_chart.to_string() << "\n";
  std::cout << "Paper Figure 8: static counts fall to 55%-20% of baseline and dynamic\n"
               "counts to 70%-33%; rr dominates the static improvement while cc dominates\n"
               "the dynamic one (redundancy concentrates in set-up code, combining in the\n"
               "main loop).\n";
  bench::maybe_write_csv(all, options);
  return 0;
}
