// Ablation for the paper's future-work suggestion ("a hybrid solution
// based on machine and application characteristics", §2): the hybrid
// combining heuristic with a machine-derived size cap and a window floor,
// swept across both knobs, against the two paper heuristics — plus the
// looser "nested-intervals" reading of max-latency.
#include <iostream>

#include "bench/common.h"
#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/support/table.h"

namespace {

zc::driver::Metrics run_with(const zc::zir::Program& p, const zc::comm::OptOptions& opts,
                             const zc::bench::Options& options,
                             const std::map<std::string, long long>& cfg_overrides) {
  zc::driver::Experiment e{"custom", opts, zc::ironman::CommLibrary::kSHMEM};
  zc::sim::RunConfig cfg;
  cfg.procs = options.procs;
  cfg.config_overrides = cfg_overrides;
  return zc::driver::run_experiment(p, e, std::move(cfg));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Ablation: hybrid combining heuristic",
                      "size-capped, window-preserving combining (paper future work)", options);

  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const auto cfg = bench::scale_for(info, options);

    Table t({"heuristic", "static", "dynamic", "time (s)", "scaled"});
    t.set_align(0, Align::kLeft);

    const comm::OptOptions base_opts = comm::OptOptions::for_level(comm::OptLevel::kBaseline);
    const double base_time = run_with(p, base_opts, options, cfg).execution_time;

    auto add = [&](const std::string& label, comm::OptOptions o) {
      const driver::Metrics m = run_with(p, o, options, cfg);
      RowBuilder rb;
      rb.cell(label)
          .cell(static_cast<long long>(m.static_count))
          .cell(m.dynamic_count)
          .cell(m.execution_time, 6)
          .percent_cell(m.execution_time, base_time);
      t.add_row(std::move(rb).build());
    };

    comm::OptOptions pl = comm::OptOptions::for_level(comm::OptLevel::kPL);
    add("max combining", pl);
    pl.heuristic = comm::CombineHeuristic::kMaxLatency;
    add("max latency hiding", pl);
    pl.heuristic = comm::CombineHeuristic::kNested;
    add("nested intervals", pl);
    for (const long long cap : {64LL, 512LL, 4096LL}) {
      for (const double floor : {0.0, 0.5}) {
        comm::OptOptions h = comm::OptOptions::for_level(comm::OptLevel::kPL);
        h.heuristic = comm::CombineHeuristic::kHybrid;
        h.hybrid_max_elems = cap;
        h.hybrid_min_window_fraction = floor;
        add("hybrid cap=" + std::to_string(cap) + " floor=" +
                std::to_string(floor).substr(0, 3),
            h);
      }
    }

    std::cout << info.name << " (" << bench::scale_label(info, options) << ", SHMEM)\n"
              << t.to_string() << "\n";
  }
  std::cout << "Reading: with messages far below the 512-double knee, the size cap\n"
               "rarely binds and hybrid approaches max combining; a high window floor\n"
               "degenerates toward max latency hiding. The sweet spot tracks the\n"
               "machine knee, as the paper conjectured.\n";
  return 0;
}
