// Guard benchmark for the windowed telemetry sink (src/tseries): engine
// throughput with the timeline detached (the default, which must stay
// free) vs attached (per-event windowed accumulation). Gates the attached
// overhead at <= 5% on the engine hot path and asserts the sink never
// perturbs the simulation (bit-identical results on vs off).
//
// Methodology (shared with bench_serve_throughput's observability gate):
// noise on a shared host only ever ADDS time, so each arm's minimum mean
// across order-alternated repetitions is its least-contaminated estimate;
// the gate compares those minima. A busy stretch can still contaminate
// every rep of one attempt, so a failing verdict is re-measured (up to
// three attempts, minima accumulated across all of them) — a genuine
// regression stays above the gate in every window, a noise spike clears.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "src/comm/optimizer.h"
#include "src/exec/sweep.h"
#include "src/parser/parser.h"
#include "src/sim/engine.h"
#include "src/support/io.h"
#include "src/support/json.h"
#include "src/tseries/tseries.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace zc;

/// Mean seconds per run over `iters` runs, timeline attached or not. The
/// series is constructed once per rep (its windows fold across runs — the
/// realistic long-lived-sink shape; construction is off the clock anyway).
double mean_run_seconds(const zir::Program& program, const comm::CommPlan& plan,
                        const sim::RunConfig& base, int iters, bool attached) {
  tseries::SimSeries series(base.procs);
  sim::RunConfig cfg = base;
  cfg.timeline = attached ? &series : nullptr;
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const sim::RunResult result = sim::run_program(program, plan, cfg);
    if (result.total_messages == 0) std::abort();  // not a real run
  }
  return std::chrono::duration<double>(Clock::now() - t0).count() /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options options = bench::parse_options(argc, argv);
  const int procs = options.procs;

  const zir::Program program =
      parser::parse_program(programs::kernel_source("jacobi"));
  const comm::CommPlan plan = comm::plan_communication(
      program, comm::OptOptions::for_level(comm::OptLevel::kPL));
  sim::RunConfig base;
  base.procs = procs;
  base.config_overrides = {{"n", 64}, {"iters", 4}};

  std::cout << "== Timeline sink overhead: engine runs, timeline off vs on ==\n"
            << "jacobi/pl, procs=" << procs << "\n\n";

  // Bit-identity first: attaching the sink must not change the simulation.
  tseries::SimSeries probe(procs);
  sim::RunConfig observed = base;
  observed.timeline = &probe;
  const bool identical = exec::result_checksum(sim::run_program(program, plan, base)) ==
                         exec::result_checksum(sim::run_program(program, plan, observed));
  std::cout << (identical ? "determinism: results bit-identical with the sink attached\n"
                          : "determinism: FAILED — sink changed the results\n");

  constexpr int kReps = 7;
  constexpr int kIters = 30;
  constexpr int kAttempts = 3;
  double off_us = 0.0;
  double on_us = 0.0;
  double overhead_pct = 0.0;
  bool within = false;
  std::vector<double> off_samples;
  std::vector<double> on_samples;
  for (int attempt = 0; attempt < kAttempts && !within; ++attempt) {
    if (attempt > 0) {
      std::cout << "above 5% — re-measuring (attempt " << attempt + 1 << "/" << kAttempts
                << ")\n";
    }
    for (int r = 0; r < kReps; ++r) {
      const bool on_first = r % 2 == 1;
      const double first = mean_run_seconds(program, plan, base, kIters, on_first);
      const double second = mean_run_seconds(program, plan, base, kIters, !on_first);
      const double off_s = on_first ? second : first;
      const double on_s = on_first ? first : second;
      std::cout << "rep " << r << ": off " << off_s * 1e6 << " us/run, on "
                << on_s * 1e6 << " us/run\n";
      off_samples.push_back(off_s);
      on_samples.push_back(on_s);
    }
    const auto minimum = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
    };
    off_us = minimum(off_samples) * 1e6;
    on_us = minimum(on_samples) * 1e6;
    const double ratio = off_us > 0.0 ? on_us / off_us : 0.0;
    overhead_pct = (ratio - 1.0) * 100.0;
    within = ratio > 0.0 && ratio <= 1.05;
  }
  std::cout << "min-of-means: off " << off_us << " us/run, on " << on_us
            << " us/run, overhead " << overhead_pct << "%\n"
            << (within ? "acceptance: timeline sink overhead within 5% on the engine path\n"
                       : "acceptance: FAILED — timeline sink overhead above 5% on the "
                         "engine path\n");

  if (options.bench_json_path.has_value()) {
    json::Value doc = json::Value::make_object();
    doc["schema"] = json::Value::make_str("zcomm-bench-tseries-overhead");
    doc["bench"] = json::Value::make_str(options.bench_name);
    doc["procs"] = json::Value::make_int(procs);
    doc["reps"] = json::Value::make_int(static_cast<long long>(off_samples.size()));
    doc["iters_per_rep"] = json::Value::make_int(kIters);
    doc["off_us_per_run"] = json::Value::make_num(off_us);
    doc["on_us_per_run"] = json::Value::make_num(on_us);
    doc["overhead_pct"] = json::Value::make_num(overhead_pct);
    doc["within_5pct"] = json::Value::make_bool(within);
    doc["bit_identical"] = json::Value::make_bool(identical);
    bench::write_bench_json(doc, options);
    std::cout << "(wrote " << *options.bench_json_path << ")\n";
  }
  return identical && within ? 0 : 1;
}
