# Bench harnesses: one binary per paper table/figure plus ablations and a
# google-benchmark microbenchmark suite. Included from the top-level
# CMakeLists so the binaries land alone in ${CMAKE_BINARY_DIR}/bench.

add_library(zc_bench STATIC
  bench/common.cpp
)
target_link_libraries(zc_bench PUBLIC
  zc_exec zc_driver zc_programs zc_sim zc_runtime zc_comm zc_parser zc_zir
  zc_machine zc_ironman zc_archive zc_support)

function(zc_bench_binary name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE zc_bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

zc_bench_binary(bench_fig05_bindings)
zc_bench_binary(bench_fig06_overhead)
zc_bench_binary(bench_fig07_programs)
zc_bench_binary(bench_fig08_counts)
zc_bench_binary(bench_fig10a_pvm)
zc_bench_binary(bench_fig10b_shmem)
zc_bench_binary(bench_fig11_heuristics)
zc_bench_binary(bench_fig12_heuristic_times)
zc_bench_binary(bench_table1_tomcatv)
zc_bench_binary(bench_table2_swm)
zc_bench_binary(bench_table3_simple)
zc_bench_binary(bench_table4_sp)
zc_bench_binary(bench_sweep_scaling)
zc_bench_binary(bench_abl_knee)

# Smoke-run the sweep-scaling harness: asserts the scheduler, the plan
# cache, and the legacy loop agree bit-identically on the whole fig07 grid
# (exit 0 iff every slot matched) and that the cache actually hit. The
# speedup number itself is hardware-dependent and never gated here.
add_test(NAME bench_sweep_scaling_smoke
  COMMAND bench_sweep_scaling --procs=4
          --bench-json=${CMAKE_BINARY_DIR}/bench/BENCH_sweep_scaling_smoke.json)
set_tests_properties(bench_sweep_scaling_smoke PROPERTIES
  LABELS "smoke;tsan"
  PASS_REGULAR_EXPRESSION "determinism: all schedules bit-identical")
zc_bench_binary(bench_serve_throughput)
target_link_libraries(bench_serve_throughput PRIVATE zc_serve)

# Smoke-run the serve-throughput harness: asserts the in-process service
# answers every closed-loop request across the whole jobs x {cold,warm} grid,
# that a warm plan cache beats a cold one by >= 3x in plan-only mode (the
# cache-amortization claim), and that the observability stack — info-level
# logging plus the flight recorder — costs <= 5% on the warm plan-mode path.
# Absolute req/s is hardware-dependent and never gated. The single regex
# spans both acceptance lines (CMake "." matches newlines), so both gates
# must pass.
add_test(NAME bench_serve_throughput_smoke
  COMMAND bench_serve_throughput --procs=4
          --bench-json=${CMAKE_BINARY_DIR}/bench/BENCH_serve_throughput_smoke.json)
# RUN_SERIAL: the gates are throughput ratios; sharing the core with other
# ctest jobs skews the compared cells unpredictably.
set_tests_properties(bench_serve_throughput_smoke PROPERTIES
  LABELS "smoke;tsan"
  RUN_SERIAL TRUE
  PASS_REGULAR_EXPRESSION
    "acceptance: plan-mode warm/cold throughput >= 3x.*acceptance: observability overhead within 5%")

zc_bench_binary(bench_tseries_overhead)
target_link_libraries(bench_tseries_overhead PRIVATE zc_tseries)

# Smoke-run the timeline-sink guard bench: asserts attaching the windowed
# telemetry sink leaves engine results bit-identical and costs <= 5% on the
# engine hot path. The regex spans both verdict lines (CMake "." matches
# newlines), so both gates must pass. Absolute us/run is hardware-dependent
# and never gated.
add_test(NAME bench_tseries_overhead_smoke
  COMMAND bench_tseries_overhead --procs=4
          --bench-json=${CMAKE_BINARY_DIR}/bench/BENCH_tseries_overhead_smoke.json)
# RUN_SERIAL: the gate is a timing ratio; sharing the core with other ctest
# jobs skews the compared arms unpredictably.
set_tests_properties(bench_tseries_overhead_smoke PROPERTIES
  LABELS "smoke;tsan"
  RUN_SERIAL TRUE
  PASS_REGULAR_EXPRESSION
    "determinism: results bit-identical with the sink attached.*acceptance: timeline sink overhead within 5%")

zc_bench_binary(bench_engine_scaling)

# Smoke-run the engine-scaling harness on a tiny mesh: asserts the
# event-driven core and the lockstep reference produce bit-identical result
# checksums on every (benchmark, procs) cell. The speedup numbers are
# hardware-dependent and never gated here — the committed
# BENCH_engine_scaling.json carries the full 64..4096 ladder.
add_test(NAME bench_engine_scaling_smoke
  COMMAND bench_engine_scaling --procs=4
          --bench-json=${CMAKE_BINARY_DIR}/bench/BENCH_engine_scaling_smoke.json)
set_tests_properties(bench_engine_scaling_smoke PROPERTIES
  LABELS "smoke;tsan"
  PASS_REGULAR_EXPRESSION
    "determinism: event and lockstep checksums bit-identical on every cell")

zc_bench_binary(bench_abl_hybrid)
zc_bench_binary(bench_abl_interblock)
zc_bench_binary(bench_paragon_suite)

add_executable(bench_micro_passes bench/bench_micro_passes.cpp)
target_link_libraries(bench_micro_passes PRIVATE zc_bench zc_analysis benchmark::benchmark)
set_target_properties(bench_micro_passes PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Smoke-run the phase-split section (micros skipped via a non-matching
# filter, tiny mesh): asserts the two engine cores agree bit-identically on
# the phase-split workload. The sim_phase_speedup value is
# hardware-dependent and never gated here — the committed
# BENCH_micro_passes.json carries the 4096-processor evidence and
# `zcomm_bench check` trend-gates it.
add_test(NAME bench_micro_passes_smoke
  COMMAND bench_micro_passes --benchmark_filter=ThisMatchesNothing --procs=4
          --bench-json=${CMAKE_BINARY_DIR}/bench/BENCH_micro_passes_smoke.json)
set_tests_properties(bench_micro_passes_smoke PROPERTIES
  LABELS "smoke;tsan"
  PASS_REGULAR_EXPRESSION "determinism: phase-split engine checksums bit-identical")

add_executable(bench_trace_overhead bench/bench_trace_overhead.cpp)
target_link_libraries(bench_trace_overhead PRIVATE zc_bench benchmark::benchmark)
set_target_properties(bench_trace_overhead PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(bench_blame_overhead bench/bench_blame_overhead.cpp)
target_link_libraries(bench_blame_overhead PRIVATE zc_bench zc_analysis benchmark::benchmark)
set_target_properties(bench_blame_overhead PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Smoke-run the attribution guard bench in ctest (tiny min_time: this checks
# it runs and the analyses agree with themselves, not the timings).
add_test(NAME bench_blame_overhead_smoke
  COMMAND bench_blame_overhead --benchmark_min_time=0.01)

add_executable(bench_prof_overhead bench/bench_prof_overhead.cpp)
target_link_libraries(bench_prof_overhead PRIVATE zc_bench zc_prof benchmark::benchmark)
set_target_properties(bench_prof_overhead PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Same deal for the host-profiler guard bench: asserts the binary runs and
# the span machinery survives a real pipeline under benchmark iteration.
add_test(NAME bench_prof_overhead_smoke
  COMMAND bench_prof_overhead --benchmark_min_time=0.01)
