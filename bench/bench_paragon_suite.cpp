// Backs the paper's §3.2 claim that is stated but not tabulated: "when we
// performed our full battery of tests using the benchmark suite on the
// Paragon, the asynchronous primitives saw little performance improvement
// or, in most cases, performance degradation. Consequently, we will not
// present the Paragon results of experiments to follow." This harness IS
// those unpresented runs: the four benchmarks on the simulated Paragon
// under all three NX bindings, fully optimized.
#include <iostream>

#include "bench/common.h"
#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Paragon suite (§3.2, unpresented in the paper)",
                      "NX sync vs. asynchronous vs. callback bindings, fully optimized",
                      options);

  Table t({"program", "binding", "time (s)", "vs csend/crecv"});
  t.set_align(1, Align::kLeft);
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const comm::CommPlan plan =
        comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kPL));
    double sync_time = 0.0;
    for (const auto& [label, lib] :
         std::vector<std::pair<const char*, ironman::CommLibrary>>{
             {"csend/crecv", ironman::CommLibrary::kNXSync},
             {"isend/irecv", ironman::CommLibrary::kNXAsync},
             {"hsend/hrecv", ironman::CommLibrary::kNXCallback}}) {
      sim::RunConfig cfg;
      cfg.machine = machine::paragon_model();
      cfg.library = lib;
      cfg.procs = options.procs;
      cfg.config_overrides = bench::scale_for(info, options);
      const sim::RunResult r = sim::run_program(p, plan, cfg);
      if (lib == ironman::CommLibrary::kNXSync) sync_time = r.elapsed_seconds;
      RowBuilder rb;
      rb.cell(info.name).cell(label).cell(r.elapsed_seconds, 6).percent_cell(r.elapsed_seconds,
                                                                             sync_time);
      t.add_row(std::move(rb).build());
    }
    t.add_separator();
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Expected per the paper: the asynchronous and callback bindings show\n"
               "little improvement over csend/crecv, and mostly degradation — their\n"
               "posting/completion overheads dwarf what their overlap can recover.\n";
  return 0;
}
