// Ablation supporting §3.2: the Figure 6 knee is produced by the ratio of
// per-call overhead to per-byte cost plus the per-packet charge. Sweeping
// the packet size (and zeroing the per-packet overhead) moves/removes the
// knee, demonstrating the mechanism rather than asserting it.
#include <iostream>

#include "bench/common.h"
#include "src/sim/ping.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Ablation: knee vs. packetization",
                      "where does the 512-double knee come from?", options);

  Table t({"packet bytes", "packet overhead (us)", "knee (doubles)",
           "overhead @64 dbl (us)", "overhead @4096 dbl (us)"});
  const auto sizes = sim::default_ping_sizes();
  for (const long long packet_bytes : {1024LL, 4096LL, 16384LL, 65536LL}) {
    for (const double packet_overhead : {0.0, 4.0e-6, 16.0e-6}) {
      machine::MachineModel m = machine::t3d_model();
      m.packet_bytes = packet_bytes;
      m.packet_overhead = packet_overhead;
      const sim::PingResult r = sim::run_ping(m, ironman::CommLibrary::kPVM, sizes, 500);
      RowBuilder rb;
      rb.cell(packet_bytes)
          .cell(packet_overhead * 1e6, 1)
          .cell(r.knee_doubles())
          .cell(r.points[6].exposed * 1e6, 2)
          .cell(r.points[12].exposed * 1e6, 2);
      t.add_row(std::move(rb).build());
    }
    t.add_separator();
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Reading: with no per-packet charge the knee is set purely by the\n"
               "overhead/per-byte ratio; larger packets with real per-packet overheads\n"
               "push the knee out. The T3D/Paragon 4 KB packets with a few microseconds\n"
               "of per-packet cost land it at ~512 doubles, as the paper measured.\n";
  return 0;
}
