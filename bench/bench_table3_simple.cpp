// Reproduces Appendix Table 3: results for 256x256 simple on 64 processors.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  using zc::bench::PaperRow;
  const std::vector<PaperRow> paper = {
      {"baseline", 266, 28188, 66.749756},
      {"rr", 103, 21433, 61.193568},
      {"cc", 79, 10993, 53.962579},
      {"pl", 79, 10993, 48.077192},
      {"pl with shmem", 79, 10993, 33.720775},
      {"pl with max latency", 84, 16143, 43.637907},
  };
  return zc::bench::run_appendix_table(argc, argv, "Table 3", "simple", paper);
}
