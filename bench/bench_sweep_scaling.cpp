// Sweep-scheduler scaling: runs the fig07 program grid (every benchmark
// program x every Figure 9 experiment) three ways —
//   1. legacy serial: a plain loop over driver::run_experiment (plans every
//      run, the pre-scheduler behaviour),
//   2. scheduler, --jobs=1: exec::run_sweep inline with a fresh plan cache,
//   3. scheduler, --jobs=N: the same grid fanned across N workers with a
//      fresh plan cache,
// verifies the three produce bit-identical results per grid slot
// (exec::result_checksum + plan text), and reports wall times, speedup, and
// plan-cache hit rates. Writes BENCH_sweep_scaling.json.
//
// The speedup line reports what this host actually delivered: on a
// single-core container the threaded wall time will not beat serial, and
// this harness says so rather than inventing a number — the determinism
// checks and cache-hit accounting hold at any core count, and the plan
// cache's saved planning work shows up even at --jobs=1.
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/exec/sweep.h"
#include "src/support/io.h"
#include "src/support/json.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  bench::Options options = bench::parse_options(argc, argv);
  if (options.jobs == 1) options.jobs = 4;  // the headline comparison point
  if (options.jobs == 0) options.jobs = exec::ThreadPool::hardware_jobs();
  bench::print_header("Sweep scaling",
                      "parallel sweep scheduler vs serial on the fig07 program grid", options);

  // The grid: every benchmark program x every paper experiment, at each
  // program's small test scale (this measures the scheduler, not the paper;
  // repeats amplify the grid so per-task cost dominates pool overhead).
  constexpr int kRepeat = 3;
  std::vector<exec::SweepItem> items;
  for (int r = 0; r < kRepeat; ++r) {
    for (const auto& info : programs::benchmark_suite()) {
      const std::shared_ptr<const zir::Program> program = bench::parsed_program(info);
      for (const driver::Experiment& e : driver::paper_experiments()) {
        exec::SweepItem item;
        item.label = info.name + "/" + e.name + "/r" + std::to_string(r);
        item.program = program;
        item.experiment = e;
        item.procs = options.procs;
        item.config_overrides = info.test_configs;
        items.push_back(std::move(item));
      }
    }
  }

  // 1. Legacy serial loop: plans inside every run_experiment call.
  const Clock::time_point legacy_start = Clock::now();
  std::vector<std::uint64_t> legacy_sums;
  legacy_sums.reserve(items.size());
  for (const exec::SweepItem& item : items) {
    sim::RunConfig cfg;
    cfg.procs = item.procs;
    cfg.config_overrides = item.config_overrides;
    const driver::Metrics m = driver::run_experiment(*item.program, item.experiment, cfg);
    legacy_sums.push_back(exec::result_checksum(m.run));
  }
  const double legacy_s = seconds_since(legacy_start);

  // 2. Scheduler at --jobs=1 (inline serial path, fresh plan cache).
  exec::PlanCache serial_cache;
  exec::SweepOptions serial_opts;
  serial_opts.jobs = 1;
  serial_opts.plan_cache = &serial_cache;
  const Clock::time_point serial_start = Clock::now();
  const std::vector<exec::SweepResult> serial = exec::run_sweep(items, serial_opts);
  const double serial_s = seconds_since(serial_start);

  // 3. Scheduler at --jobs=N (fresh plan cache again, for a fair hit count).
  exec::PlanCache parallel_cache;
  exec::SweepOptions parallel_opts;
  parallel_opts.jobs = options.jobs;
  parallel_opts.plan_cache = &parallel_cache;
  const Clock::time_point parallel_start = Clock::now();
  const std::vector<exec::SweepResult> parallel = exec::run_sweep(items, parallel_opts);
  const double parallel_s = seconds_since(parallel_start);

  // Bit-identity: every slot must agree across all three executions.
  int mismatches = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!serial[i].ok || !parallel[i].ok) {
      std::cerr << items[i].label << ": run failed: "
                << (serial[i].ok ? parallel[i].error : serial[i].error) << "\n";
      ++mismatches;
      continue;
    }
    const std::uint64_t s = exec::result_checksum(serial[i].metrics.run);
    const std::uint64_t p = exec::result_checksum(parallel[i].metrics.run);
    if (s != legacy_sums[i] || p != legacy_sums[i] ||
        serial[i].metrics.static_count != parallel[i].metrics.static_count ||
        serial[i].metrics.dynamic_count != parallel[i].metrics.dynamic_count) {
      std::cerr << items[i].label << ": results differ across schedules\n";
      ++mismatches;
    }
  }

  const exec::PlanCacheStats serial_cs = serial_cache.stats();
  const exec::PlanCacheStats parallel_cs = parallel_cache.stats();
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "grid: " << items.size() << " runs ("
            << programs::benchmark_suite().size() << " programs x "
            << driver::paper_experiments().size() << " experiments x " << kRepeat
            << " repeats), host cores: " << cores << "\n";
  std::cout << "legacy serial loop:      " << legacy_s << " s (plans every run)\n";
  std::cout << "scheduler --jobs=1:      " << serial_s << " s, plan cache " << serial_cs.hits
            << " hits / " << serial_cs.misses << " misses (hit rate " << serial_cs.hit_rate()
            << ")\n";
  std::cout << "scheduler --jobs=" << options.jobs << ":      " << parallel_s
            << " s, plan cache " << parallel_cs.hits << " hits / " << parallel_cs.misses
            << " misses (hit rate " << parallel_cs.hit_rate() << ")\n";
  std::cout << "speedup (jobs=" << options.jobs << " over jobs=1): " << speedup << "x";
  if (cores <= 1) {
    std::cout << "  [single-core host: no thread-level speedup is possible here]";
  }
  std::cout << "\n";
  std::cout << (mismatches == 0
                    ? "determinism: all schedules bit-identical per grid slot\n"
                    : "determinism: MISMATCHES FOUND\n");

  if (options.bench_json_path.has_value()) {
    json::Value doc = json::Value::make_object();
    doc["schema"] = json::Value::make_str("zcomm-bench-sweep-scaling");
    doc["bench"] = json::Value::make_str(options.bench_name);
    doc["grid_runs"] = json::Value::make_int(static_cast<long long>(items.size()));
    doc["host_cores"] = json::Value::make_int(static_cast<long long>(cores));
    doc["jobs"] = json::Value::make_int(options.jobs);
    doc["legacy_serial_s"] = json::Value::make_num(legacy_s);
    doc["scheduler_jobs1_s"] = json::Value::make_num(serial_s);
    doc["scheduler_jobsN_s"] = json::Value::make_num(parallel_s);
    doc["speedup_jobsN_over_jobs1"] = json::Value::make_num(speedup);
    doc["plan_cache_hits"] = json::Value::make_int(parallel_cs.hits);
    doc["plan_cache_misses"] = json::Value::make_int(parallel_cs.misses);
    doc["plan_cache_hit_rate"] = json::Value::make_num(parallel_cs.hit_rate());
    doc["bit_identical"] = json::Value::make_bool(mismatches == 0);
    bench::write_bench_json(doc, options);
    std::cout << "(wrote " << *options.bench_json_path << ")\n";
  }
  return mismatches == 0 ? 0 : 1;
}
