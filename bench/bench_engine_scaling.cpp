// Engine scaling: the event-driven core vs the lockstep reference across
// simulated-processor counts, on the paper's four table benchmarks.
//
// The event core (src/sim/engine_event.cpp) exists to make large meshes
// practical — the paper stops at 64 T3D nodes because that was the machine;
// the simulator's ceiling is the lockstep interpreter's O(procs) cost per
// statement. This harness walks the ladder 64 / 256 / 1024 / 4096 and
// reports both cores' sim-phase wall time per cell, asserting on every cell
// that exec::result_checksum agrees bit-for-bit between them (scaling is
// worthless if the fast core computes something else).
//
// Invoke with --procs=4096 for the full ladder (the committed
// BENCH_engine_scaling.json); --procs=N below 64 collapses the ladder to
// {N}, which is what the smoke-tier ctest runs. Timings are
// hardware-dependent and never gated here — the regression sentinel
// (scripts/perf_sentinel.py) tracks them across archived runs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/comm/optimizer.h"
#include "src/exec/sweep.h"
#include "src/sim/engine.h"
#include "src/support/json.h"

namespace zc {
namespace {

double median_run_ns(const zir::Program& program, const comm::CommPlan& plan,
                     sim::EngineKind engine, int procs,
                     const std::map<std::string, long long>& configs, int samples,
                     std::uint64_t& checksum_out) {
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    sim::RunConfig cfg;
    cfg.procs = procs;
    cfg.engine = engine;
    cfg.config_overrides = configs;
    const auto t0 = std::chrono::steady_clock::now();
    const sim::RunResult r = sim::run_program(program, plan, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
    checksum_out = exec::result_checksum(r);
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

int run(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("engine scaling",
                      "event-driven vs lockstep engine core, 64..4096 simulated processors",
                      options);

  // The ladder: paper partition size up to the scale target, clipped by
  // --procs; a --procs below 64 (smoke tier) collapses it to that one rung.
  std::vector<int> ladder;
  for (const int p : {64, 256, 1024, 4096}) {
    if (p <= options.procs) ladder.push_back(p);
  }
  if (ladder.empty()) ladder.push_back(options.procs);

  json::Value results = json::Value::make_array();
  bool all_match = true;

  std::cout << "benchmark        procs    event-sim    lockstep-sim   speedup  checksums\n";
  for (const std::string bench : {"tomcatv", "swm", "simple", "sp"}) {
    const programs::BenchmarkInfo& info = programs::benchmark(bench);
    const std::shared_ptr<const zir::Program> program = bench::parsed_program(info);
    const std::map<std::string, long long> configs = bench::scale_for(info, options);
    const comm::CommPlan plan =
        comm::plan_communication(*program, comm::OptOptions::for_level(comm::OptLevel::kPL));

    for (const int procs : ladder) {
      // The lockstep core's wall time grows with the mesh; sample it less
      // as the ladder climbs so the full run stays tractable.
      const int event_samples = procs <= 256 ? 5 : 3;
      const int lockstep_samples = procs <= 256 ? 3 : (procs <= 1024 ? 2 : 1);

      std::uint64_t event_sum = 0;
      std::uint64_t lockstep_sum = 0;
      const double event_ns = median_run_ns(*program, plan, sim::EngineKind::kEvent, procs,
                                            configs, event_samples, event_sum);
      const double lockstep_ns = median_run_ns(*program, plan, sim::EngineKind::kLockstep, procs,
                                               configs, lockstep_samples, lockstep_sum);
      const bool match = event_sum == lockstep_sum;
      all_match = all_match && match;
      const double speedup = event_ns > 0 ? lockstep_ns / event_ns : 0.0;

      std::printf("%-16s %5d %9.1f ms %11.1f ms %8.2fx  %s\n", bench.c_str(), procs,
                  event_ns / 1e6, lockstep_ns / 1e6, speedup, match ? "match" : "MISMATCH");

      json::Value r = json::Value::make_object();
      r["name"] = json::Value::make_str(bench + "/p" + std::to_string(procs));
      json::Value params = json::Value::make_object();
      params["procs"] = json::Value::make_int(procs);
      for (const auto& [k, v] : configs) params[k] = json::Value::make_int(v);
      r["params"] = std::move(params);
      r["sim_event_ns"] = json::Value::make_num(event_ns);
      r["sim_lockstep_ns"] = json::Value::make_num(lockstep_ns);
      r["speedup"] = json::Value::make_num(speedup);
      r["samples"] = json::Value::make_int(event_samples);
      results.push_back(std::move(r));
    }
  }

  if (!all_match) {
    std::cout << "\nFAIL: event and lockstep cores disagree — see MISMATCH rows above\n";
    return 1;
  }
  std::cout << "\ndeterminism: event and lockstep checksums bit-identical on every cell\n";

  json::Value doc = json::Value::make_object();
  doc["schema"] = json::Value::make_str("zcomm-bench-perf");
  doc["bench"] = json::Value::make_str(options.bench_name);
  doc["results"] = std::move(results);
  bench::write_bench_json(doc, options);
  return 0;
}

}  // namespace
}  // namespace zc

int main(int argc, char** argv) { return zc::run(argc, argv); }
