#include "bench/common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/parser/parser.h"
#include "src/support/str.h"

namespace zc::bench {

namespace {

/// Bench-default iteration counts: the paper's spatial sizes with fewer
/// iterations, so the whole suite runs in a couple of minutes. Counts scale
/// linearly with iterations; scaled times and count ratios are unaffected.
const std::map<std::string, std::map<std::string, long long>>& bench_scales() {
  static const std::map<std::string, std::map<std::string, long long>> scales = {
      {"tomcatv", {{"n", 128}, {"iters", 30}}},
      {"swm", {{"n", 512}, {"iters", 6}}},
      {"simple", {{"n", 256}, {"iters", 8}}},
      {"sp", {{"n", 16}, {"iters", 30}}},
  };
  return scales;
}

}  // namespace

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paper") {
      o.paper_scale = true;
    } else if (str::starts_with(arg, "--procs=")) {
      o.procs = std::atoi(arg.c_str() + 8);
      if (o.procs < 1) {
        std::cerr << "bad --procs value\n";
        std::exit(2);
      }
    } else if (str::starts_with(arg, "--csv=")) {
      o.csv_path = arg.substr(6);
    } else if (arg == "--benchmark_format" || str::starts_with(arg, "--benchmark")) {
      // Ignore google-benchmark flags when shared runners see them.
    } else {
      std::cerr << "usage: " << argv[0] << " [--paper] [--procs=N] [--csv=PATH]\n";
      std::exit(2);
    }
  }
  return o;
}

std::map<std::string, long long> scale_for(const programs::BenchmarkInfo& info,
                                           const Options& options) {
  if (options.paper_scale) return info.paper_configs;
  return bench_scales().at(info.name);
}

std::string scale_label(const programs::BenchmarkInfo& info, const Options& options) {
  const auto cfg = scale_for(info, options);
  return info.size_label + ", " + std::to_string(cfg.at("iters")) + " iterations";
}

std::vector<Row> run_experiments(const programs::BenchmarkInfo& info,
                                 const std::vector<std::string>& experiment_names,
                                 const Options& options) {
  // Cache: several figures share experiment runs within one process.
  static std::map<std::string, Row> cache;

  std::vector<Row> rows;
  const zir::Program program = parser::parse_program(info.source);
  for (const std::string& name : experiment_names) {
    const std::string key = info.name + "/" + name + "/" +
                            (options.paper_scale ? "paper" : "bench") + "/" +
                            std::to_string(options.procs);
    auto it = cache.find(key);
    if (it == cache.end()) {
      const auto exp = driver::find_experiment(name);
      if (!exp.has_value()) throw Error("unknown experiment '" + name + "'");
      sim::RunConfig cfg;
      cfg.procs = options.procs;
      cfg.config_overrides = scale_for(info, options);
      const driver::Metrics m = driver::run_experiment(program, *exp, std::move(cfg));
      Row row;
      row.benchmark = info.name;
      row.experiment = name;
      row.static_count = m.static_count;
      row.dynamic_count = m.dynamic_count;
      row.execution_time = m.execution_time;
      it = cache.emplace(key, row).first;
    }
    rows.push_back(it->second);
  }
  return rows;
}

void print_header(const std::string& figure, const std::string& caption,
                  const Options& options) {
  std::cout << "================================================================\n";
  std::cout << figure << " — " << caption << "\n";
  std::cout << "Choi & Snyder, \"Quantifying the Effects of Communication\n";
  std::cout << "Optimizations\" (ICPP 1997), reproduced on the simulated Cray\n";
  std::cout << "T3D / Intel Paragon; " << options.procs << "-processor partition, "
            << (options.paper_scale ? "paper" : "bench") << " scale.\n";
  std::cout << "================================================================\n\n";
}

void maybe_write_csv(const std::vector<Row>& rows, const Options& options) {
  if (!options.csv_path.has_value()) return;
  CsvWriter csv({"benchmark", "experiment", "static_count", "dynamic_count", "execution_time"});
  for (const Row& r : rows) {
    csv.add_row({r.benchmark, r.experiment, std::to_string(r.static_count),
                 std::to_string(r.dynamic_count), str::format_f(r.execution_time, 6)});
  }
  csv.write_file(*options.csv_path);
  std::cout << "\n(CSV written to " << *options.csv_path << ")\n";
}

double scaled(const std::vector<Row>& rows, const std::string& experiment, double Row::*field) {
  const Row* base = nullptr;
  const Row* target = nullptr;
  for (const Row& r : rows) {
    if (r.experiment == "baseline") base = &r;
    if (r.experiment == experiment) target = &r;
  }
  if (base == nullptr || target == nullptr) return std::nan("1");
  const double denom = (*base).*field;
  if (denom == 0.0) return std::nan("1");
  return (*target).*field / denom;
}

}  // namespace zc::bench
