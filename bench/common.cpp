#include "bench/common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <mutex>

#include "src/archive/archive.h"
#include "src/archive/envelope.h"
#include "src/exec/sweep.h"
#include "src/parser/parser.h"
#include "src/support/io.h"
#include "src/support/json.h"
#include "src/support/str.h"

namespace zc::bench {

namespace {

/// Bench-default iteration counts: the paper's spatial sizes with fewer
/// iterations, so the whole suite runs in a couple of minutes. Counts scale
/// linearly with iterations; scaled times and count ratios are unaffected.
const std::map<std::string, std::map<std::string, long long>>& bench_scales() {
  static const std::map<std::string, std::map<std::string, long long>> scales = {
      {"tomcatv", {{"n", 128}, {"iters", 30}}},
      {"swm", {{"n", 512}, {"iters", 6}}},
      {"simple", {{"n", 256}, {"iters", 8}}},
      {"sp", {{"n", 16}, {"iters", 30}}},
  };
  return scales;
}

/// One perf sample per (benchmark, experiment) run: plan_communication
/// timing distribution plus a single end-to-end sim sample. Accumulated
/// across the process and flushed to BENCH_<name>.json at exit.
struct PerfSample {
  std::string name;                        // "tomcatv/pl"
  std::map<std::string, long long> params; // procs + problem scale configs
  double median_ns = 0;
  double p10_ns = 0;
  double p90_ns = 0;
  int samples = 0;
  double sim_run_ns = 0;
};

struct PerfFile {
  Options options;  ///< a copy of the parsed flags (paths + envelope stamps)
  std::vector<PerfSample> results;

  void flush() const {
    json::Value doc = json::Value::make_object();
    doc["schema"] = json::Value::make_str("zcomm-bench-perf");
    doc["bench"] = json::Value::make_str(options.bench_name);
    json::Value arr = json::Value::make_array();
    for (const PerfSample& s : results) {
      json::Value r = json::Value::make_object();
      r["name"] = json::Value::make_str(s.name);
      json::Value params = json::Value::make_object();
      for (const auto& [k, v] : s.params) params[k] = json::Value::make_int(v);
      r["params"] = std::move(params);
      r["median_ns"] = json::Value::make_num(s.median_ns);
      r["p10_ns"] = json::Value::make_num(s.p10_ns);
      r["p90_ns"] = json::Value::make_num(s.p90_ns);
      r["samples"] = json::Value::make_int(s.samples);
      r["sim_run_ns"] = json::Value::make_num(s.sim_run_ns);
      arr.push_back(std::move(r));
    }
    doc["results"] = std::move(arr);
    write_bench_json(doc, options);
  }

  ~PerfFile() {
    if (!options.bench_json_path.has_value() || results.empty()) return;
    try {
      flush();
    } catch (const std::exception& e) {
      std::cerr << "bench-json: " << e.what() << "\n";
    }
  }
};

PerfFile& perf_file() {
  static PerfFile file;
  return file;
}

/// nearest-rank percentile of an unsorted sample set (q in [0,1]).
double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(q * (static_cast<double>(v.size()) - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

}  // namespace

Options parse_options(int argc, char** argv) {
  Options o;
  // bench_fig08_counts -> fig08_counts; the default perf file name.
  std::string base = argv[0];
  if (const auto slash = base.rfind('/'); slash != std::string::npos) base = base.substr(slash + 1);
  if (str::starts_with(base, "bench_")) base = base.substr(6);
  o.bench_name = base;
  o.bench_json_path = "BENCH_" + base + ".json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paper") {
      o.paper_scale = true;
    } else if (str::starts_with(arg, "--procs=")) {
      o.procs = std::atoi(arg.c_str() + 8);
      if (o.procs < 1) {
        std::cerr << "bad --procs value\n";
        std::exit(2);
      }
    } else if (str::starts_with(arg, "--jobs=")) {
      o.jobs = std::atoi(arg.c_str() + 7);
      if (o.jobs < 0) {
        std::cerr << "bad --jobs value\n";
        std::exit(2);
      }
    } else if (str::starts_with(arg, "--csv=")) {
      o.csv_path = arg.substr(6);
    } else if (str::starts_with(arg, "--bench-json=")) {
      o.bench_json_path = arg.substr(13);
    } else if (arg == "--no-bench-json") {
      o.bench_json_path = std::nullopt;
    } else if (str::starts_with(arg, "--archive=")) {
      o.archive_path = arg.substr(10);
    } else if (str::starts_with(arg, "--now=")) {
      o.now_unix = std::atoll(arg.c_str() + 6);
      if (o.now_unix <= 0) {
        std::cerr << "bad --now value (seconds since the epoch)\n";
        std::exit(2);
      }
    } else if (str::starts_with(arg, "--git-sha=")) {
      o.git_sha = arg.substr(10);
    } else if (arg == "--benchmark_format" || str::starts_with(arg, "--benchmark")) {
      // Ignore google-benchmark flags when shared runners see them.
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--paper] [--procs=N] [--jobs=N] [--csv=PATH]"
                   " [--bench-json=PATH] [--no-bench-json] [--archive=PATH]"
                   " [--now=EPOCH] [--git-sha=SHA]\n";
      std::exit(2);
    }
  }
  perf_file().options = o;
  return o;
}

void write_bench_json(const json::Value& payload, const Options& options) {
  if (!options.bench_json_path.has_value()) return;
  const long long now =
      options.now_unix != 0 ? options.now_unix : static_cast<long long>(std::time(nullptr));
  const archive::Envelope envelope = archive::wrap(payload, now, options.git_sha);
  // The BENCH file is written first and identically whether or not the
  // archive append happens — archiving must never change the bench output.
  io::write_text_file(*options.bench_json_path, envelope.to_json().dump() + "\n");
  if (options.archive_path.has_value()) {
    archive::Archive(*options.archive_path).append(envelope);
  }
}

std::map<std::string, long long> scale_for(const programs::BenchmarkInfo& info,
                                           const Options& options) {
  if (options.paper_scale) return info.paper_configs;
  return bench_scales().at(info.name);
}

std::string scale_label(const programs::BenchmarkInfo& info, const Options& options) {
  const auto cfg = scale_for(info, options);
  return info.size_label + ", " + std::to_string(cfg.at("iters")) + " iterations";
}

std::shared_ptr<const zir::Program> parsed_program(const programs::BenchmarkInfo& info) {
  // Parse-once cache: every figure/table in a binary (and every option set
  // within it) shares one immutable program per benchmark. Mutex-guarded:
  // harnesses call this from sweep-pool workers too.
  static std::mutex mu;
  static std::map<std::string, std::shared_ptr<const zir::Program>> programs;
  const std::lock_guard<std::mutex> lk(mu);
  auto it = programs.find(info.name);
  if (it == programs.end()) {
    it = programs
             .emplace(info.name,
                      std::make_shared<const zir::Program>(parser::parse_program(info.source)))
             .first;
  }
  return it->second;
}

std::vector<Row> run_experiments(const programs::BenchmarkInfo& info,
                                 const std::vector<std::string>& experiment_names,
                                 const Options& options) {
  // Cache: several figures share experiment runs within one process.
  static std::map<std::string, Row> cache;

  const std::shared_ptr<const zir::Program> program = parsed_program(info);
  const auto key_for = [&](const std::string& name) {
    return info.name + "/" + name + "/" + (options.paper_scale ? "paper" : "bench") + "/" +
           std::to_string(options.procs);
  };

  // Fan the uncached grid rows out through the sweep scheduler (serial when
  // --jobs=1); plans memoize in the process-wide cache, so e.g. "pl" and
  // "pl with shmem" optimize once between them.
  std::vector<std::string> missing;
  for (const std::string& name : experiment_names) {
    if (cache.count(key_for(name)) != 0) continue;
    if (std::find(missing.begin(), missing.end(), name) != missing.end()) continue;
    missing.push_back(name);
  }
  if (!missing.empty()) {
    std::vector<exec::SweepItem> items;
    for (const std::string& name : missing) {
      const auto exp = driver::find_experiment(name);
      if (!exp.has_value()) throw Error("unknown experiment '" + name + "'");
      exec::SweepItem item;
      item.label = key_for(name);
      item.program = program;
      item.experiment = *exp;
      item.procs = options.procs;
      item.config_overrides = scale_for(info, options);
      items.push_back(std::move(item));
    }
    exec::SweepOptions sopts;
    sopts.jobs = options.jobs;
    const std::vector<exec::SweepResult> results = exec::run_sweep(items, sopts);

    for (std::size_t i = 0; i < results.size(); ++i) {
      const exec::SweepResult& r = results[i];
      if (!r.ok) throw Error(items[i].label + ": " + r.error);
      const driver::Metrics& m = r.metrics;

      if (perf_file().options.bench_json_path.has_value()) {
        // Optimizer-time distribution: plan_communication is microseconds
        // per call, so a short repeat gives stable percentiles — sampled
        // serially here, deliberately outside the scheduler and the plan
        // cache, because this measures the planner itself. The full sim run
        // is seconds-scale and sampled once (the task's wall time).
        using Clock = std::chrono::steady_clock;
        constexpr int kSamples = 16;
        std::vector<double> plan_ns;
        plan_ns.reserve(kSamples);
        for (int s = 0; s < kSamples; ++s) {
          const Clock::time_point t0 = Clock::now();
          const comm::CommPlan plan =
              comm::plan_communication(*program, items[i].experiment.opts);
          plan_ns.push_back(std::chrono::duration<double, std::nano>(Clock::now() - t0).count());
          if (plan.static_count() != m.static_count) throw Error("unstable plan while sampling");
        }
        PerfSample sample;
        sample.name = info.name + "/" + missing[i];
        sample.params = scale_for(info, options);
        sample.params["procs"] = options.procs;
        sample.median_ns = percentile(plan_ns, 0.5);
        sample.p10_ns = percentile(plan_ns, 0.1);
        sample.p90_ns = percentile(plan_ns, 0.9);
        sample.samples = kSamples;
        sample.sim_run_ns = r.wall_seconds * 1e9;
        perf_file().results.push_back(std::move(sample));
      }

      Row row;
      row.benchmark = info.name;
      row.experiment = missing[i];
      row.static_count = m.static_count;
      row.dynamic_count = m.dynamic_count;
      row.execution_time = m.execution_time;
      cache.emplace(items[i].label, row);
    }
  }

  std::vector<Row> rows;
  rows.reserve(experiment_names.size());
  for (const std::string& name : experiment_names) rows.push_back(cache.at(key_for(name)));
  return rows;
}

void print_header(const std::string& figure, const std::string& caption,
                  const Options& options) {
  std::cout << "================================================================\n";
  std::cout << figure << " — " << caption << "\n";
  std::cout << "Choi & Snyder, \"Quantifying the Effects of Communication\n";
  std::cout << "Optimizations\" (ICPP 1997), reproduced on the simulated Cray\n";
  std::cout << "T3D / Intel Paragon; " << options.procs << "-processor partition, "
            << (options.paper_scale ? "paper" : "bench") << " scale.\n";
  std::cout << "================================================================\n\n";
}

void maybe_write_csv(const std::vector<Row>& rows, const Options& options) {
  if (!options.csv_path.has_value()) return;
  CsvWriter csv({"benchmark", "experiment", "static_count", "dynamic_count", "execution_time"});
  for (const Row& r : rows) {
    csv.add_row({r.benchmark, r.experiment, std::to_string(r.static_count),
                 std::to_string(r.dynamic_count), str::format_f(r.execution_time, 6)});
  }
  csv.write_file(*options.csv_path);
  std::cout << "\n(CSV written to " << *options.csv_path << ")\n";
}

double scaled(const std::vector<Row>& rows, const std::string& experiment, double Row::*field) {
  const Row* base = nullptr;
  const Row* target = nullptr;
  for (const Row& r : rows) {
    if (r.experiment == "baseline") base = &r;
    if (r.experiment == experiment) target = &r;
  }
  if (base == nullptr || target == nullptr) return std::nan("1");
  const double denom = (*base).*field;
  if (denom == 0.0) return std::nan("1");
  return (*target).*field / denom;
}

}  // namespace zc::bench
