// Reproduces Appendix Table 1: results for 128x128 tomcatv on 64 processors.
#include "bench/table_common.h"

int main(int argc, char** argv) {
  using zc::bench::PaperRow;
  const std::vector<PaperRow> paper = {
      {"baseline", 46, 40400, 2.491051},
      {"rr", 22, 39200, 2.327301},
      {"cc", 10, 13200, 1.901393},
      {"pl", 10, 13200, 1.875820},
      {"pl with shmem", 10, 13200, 2.029861},
      {"pl with max latency", 22, 39200, 2.148066},
  };
  return zc::bench::run_appendix_table(argc, argv, "Table 1", "tomcatv", paper);
}
