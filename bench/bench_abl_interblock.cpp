// Ablation for the paper's future-work item implemented as an extension:
// redundant-communication removal across basic-block boundaries (forward
// dataflow with context-sensitive single-call-site procedures). Compares
// counts and times against the paper's intra-block pl configuration.
#include <iostream>

#include "bench/common.h"
#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Ablation: cross-block dataflow",
                      "redundancy removal across basic blocks (paper §4 future work)",
                      options);

  Table t({"program", "configuration", "static", "dynamic", "time (s)", "scaled"});
  t.set_align(1, Align::kLeft);
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const auto cfg_overrides = bench::scale_for(info, options);

    auto run = [&](const comm::OptOptions& o) {
      const comm::CommPlan plan = comm::plan_communication(p, o);
      sim::RunConfig cfg;
      cfg.procs = options.procs;
      cfg.config_overrides = cfg_overrides;
      auto r = sim::run_program(p, plan, cfg);
      return std::make_pair(plan.static_count(), r);
    };

    const auto [base_static, base_run] =
        run(comm::OptOptions::for_level(comm::OptLevel::kBaseline));
    const auto [pl_static, pl_run] = run(comm::OptOptions::for_level(comm::OptLevel::kPL));
    comm::OptOptions inter = comm::OptOptions::for_level(comm::OptLevel::kPL);
    inter.inter_block = true;
    const auto [inter_static, inter_run] = run(inter);

    auto add = [&](const char* label, int st, const sim::RunResult& r) {
      RowBuilder rb;
      rb.cell(info.name)
          .cell(label)
          .cell(static_cast<long long>(st))
          .cell(r.dynamic_count)
          .cell(r.elapsed_seconds, 6)
          .percent_cell(r.elapsed_seconds, base_run.elapsed_seconds);
      t.add_row(std::move(rb).build());
    };
    add("baseline", base_static, base_run);
    add("pl (intra-block, the paper)", pl_static, pl_run);
    add("pl + cross-block rr (ext.)", inter_static, inter_run);
    t.add_separator();
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Reading: the phase-structured programs (SIMPLE especially) re-communicate\n"
               "slices across their phase blocks; carrying the cached-slice state across\n"
               "block boundaries removes those transfers, which intra-block analysis —\n"
               "the paper's scope — cannot see. Loops and multiply-called procedures\n"
               "stay conservative, so TOMCATV's sweep communication is untouched.\n";
  return 0;
}
