// Serve throughput: closed-loop clients driving an in-process
// serve::Service — the zcomm_serve engine without socket noise — across a
// jobs x cache-temperature grid:
//
//   mode "plan": optimize requests with "run":false over experiment=all
//     (parse + six plans per request). COLD sends a uniquely-named program
//     every iteration, so the content-keyed plan cache can never hit; WARM
//     sends one fixed program, so after a prewarm pass every plan is a
//     cache hit. The warm/cold throughput ratio is the amortization the
//     shared cache buys a long-running daemon — the headline this harness
//     gates on (warm must be >= 3x cold at every jobs level).
//   mode "run": the same grid with "run":true — simulation dominates, so
//     the cache's effect shrinks; reported ungated for honesty.
//
// Four closed-loop clients per cell (each waits for its "done" line before
// sending the next request) over service workers --jobs in {1, 2, 4}.
// Throughput scaling across jobs reports what the host delivers: on a
// single-core container more workers cannot beat one, and this harness
// says so rather than inventing a number. Latency quantiles come from the
// service's own serve.request_seconds histogram.
//
// A third section prices the PR-7 observability stack: the warm plan-mode
// jobs=1 cell runs with everything off (log level off, flight recorder
// disabled) and with everything on (info-level logging to /dev/null, the
// default 16-entry flight recorder and its per-request profiler). The
// compared number is in-worker handling time per request from the
// service's serve.request_seconds histogram; scheduler noise only ever
// adds time, so each arm's minimum mean across alternated repetitions is
// compared (re-measured on failure, so only persistent overhead fails),
// and that ratio must stay within 1.05 — telemetry on the hot path is
// priced, not assumed free.
//
// Writes BENCH_serve_throughput.json; exit status is the >= 3x plan-mode
// acceptance verdict AND the <= 5% observability-overhead verdict (never
// the jobs-scaling numbers).
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/exec/plan_cache.h"
#include "src/serve/service.h"
#include "src/support/io.h"
#include "src/support/json.h"
#include "src/support/log.h"
#include "src/support/metrics.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kClients = 4;
constexpr int kItersPerClient = 20;

/// A generated multi-sweep stencil program — large enough that parsing and
/// planning (what a cache hit skips) is real work, sized like the paper's
/// benchmarks rather than a toy. The program name makes the plan-cache key
/// unique, so cold cells mint a fresh key per request and warm cells reuse
/// one.
constexpr int kSweeps = 12;

std::string make_source(const std::string& name) {
  std::string src = "program " + name + R"(;

config n : integer = 8;

region R = [0..n+1, 0..n+1];
region I = [1..n, 1..n];

direction east = [0, 1], west = [0, -1], north = [-1, 0], south = [1, 0];

var A, B, C, D, E, F : [R] double;
var err : double;

procedure main() {
  [R] A := Index1 * 0.5;
  [R] B := Index2 * 0.25;
  [R] C := 0.0;
  [R] D := 1.0;
  [R] E := 0.0;
  [R] F := 0.0;
)";
  for (int s = 0; s < kSweeps; ++s) {
    src += R"(  [I] C := 0.25 * (A@east + A@west + A@north + A@south);
  [I] D := 0.25 * (B@east + B@west + B@north + B@south);
  [I] E := C@east + D@west + A;
  [I] F := C@north + D@south + B;
  [I] err := max<< abs(E - F);
  [I] A := E;
  [I] B := F;
)";
  }
  src += "}\n";
  return src;
}

std::string escape_newlines(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 16);
  for (const char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string optimize_line(const std::string& source, bool run, int procs) {
  // plan_text off: the closed loop measures planning and cache behavior,
  // not the serialization of six full plan dumps per request.
  return std::string(R"({"v":1,"cmd":"optimize","id":"b","source":")") +
         escape_newlines(source) + R"(","experiment":"all","procs":)" +
         std::to_string(procs) + R"(,"run":)" + (run ? "true" : "false") +
         R"(,"plan_text":false})";
}

/// Blocks the closed loop until the request's "done" (or "error") line.
struct DoneWaiter {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool errored = false;

  zc::serve::Service::Emit emit() {
    return [this](const std::string& line) {
      const bool is_done = line.find("\"kind\":\"done\"") != std::string::npos;
      const bool is_error = line.find("\"kind\":\"error\"") != std::string::npos;
      if (!is_done && !is_error) return;
      // Notify under the lock: the waiter owns this object and may move on
      // (or destroy it) the instant the mutex is released.
      const std::lock_guard<std::mutex> lk(mu);
      done = true;
      errored = is_error;
      cv.notify_all();
    };
  }

  bool wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
    const bool ok = !errored;
    done = false;
    errored = false;
    return ok;
  }
};

struct Cell {
  std::string mode;  // "plan" | "run"
  std::string cache; // "cold" | "warm"
  int jobs = 0;
  long long requests = 0;
  long long failures = 0;
  double wall_s = 0.0;
  double reqs_per_sec = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;  ///< in-worker handling time incl. telemetry
  double hit_rate = 0.0;
};

/// `observed` prices the full telemetry stack: info-level structured
/// logging (the daemon's production default, sink set up in main) plus the
/// flight recorder and its per-request profiler. Plain cells run with both
/// off so the grid measures cache behavior, not logging.
Cell run_cell(const std::string& mode, bool warm, int jobs, int procs,
              bool observed = false, int iters = kItersPerClient,
              int clients = kClients) {
  using namespace zc;
  const bool run = mode == "run";

  log::Logger::global().set_level(observed ? log::Level::kInfo : log::Level::kOff);
  exec::PlanCache cache;
  serve::ServiceOptions sopts;
  sopts.jobs = jobs;
  sopts.max_queue_depth = kClients * 2;
  sopts.plan_cache = &cache;
  sopts.flight_capacity = observed ? 16 : 0;
  serve::Service service(sopts);

  if (warm) {
    // One untimed pass fills the program and plan caches.
    DoneWaiter w;
    service.handle_line("prewarm", optimize_line(make_source("warmprog"), run, procs),
                        w.emit());
    w.wait();
  }

  std::vector<long long> failures(static_cast<std::size_t>(clients), 0);
  const Clock::time_point start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        DoneWaiter w;
        for (int i = 0; i < iters; ++i) {
          // Cold: a name never seen by this service -> guaranteed misses.
          // Warm: everyone asks for the prewarmed program -> pure hits.
          const std::string name =
              warm ? "warmprog"
                   : "cold_c" + std::to_string(c) + "_i" + std::to_string(i);
          service.handle_line("client" + std::to_string(c),
                              optimize_line(make_source(name), run, procs),
                              w.emit());
          if (!w.wait()) ++failures[static_cast<std::size_t>(c)];
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  Cell cell;
  cell.mode = mode;
  cell.cache = warm ? "warm" : "cold";
  cell.jobs = jobs;
  cell.requests = static_cast<long long>(clients) * iters;
  for (const long long f : failures) cell.failures += f;
  cell.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  cell.reqs_per_sec = cell.wall_s > 0.0
                          ? static_cast<double>(cell.requests) / cell.wall_s
                          : 0.0;
  const metrics::Histogram* h =
      service.registry().find_histogram("serve.request_seconds");
  if (h != nullptr) {
    cell.p50_s = h->quantile(0.50);
    cell.p90_s = h->quantile(0.90);
    cell.p99_s = h->quantile(0.99);
    if (h->count > 0) cell.mean_s = h->sum / static_cast<double>(h->count);
  }
  cell.hit_rate = cache.stats().hit_rate();
  service.drain();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  bench::Options options = bench::parse_options(argc, argv);
  const int procs = options.procs;

  // Observed cells log at the daemon's production level; the lines must do
  // their full formatting + write work without spamming the bench output.
  if (!log::Logger::global().set_file("/dev/null")) {
    log::Logger::global().set_level(log::Level::kOff);
  }

  std::cout << "== Serve throughput: closed-loop clients vs the shared plan cache ==\n"
            << kClients << " clients x " << kItersPerClient
            << " requests each per cell, experiment=all, procs=" << procs
            << ", host cores: " << std::thread::hardware_concurrency() << "\n\n";

  std::vector<Cell> cells;
  bool accept = true;
  long long failures = 0;
  for (const std::string& mode : {std::string("plan"), std::string("run")}) {
    for (const int jobs : {1, 2, 4}) {
      const Cell cold = run_cell(mode, /*warm=*/false, jobs, procs);
      const Cell warm = run_cell(mode, /*warm=*/true, jobs, procs);
      const double ratio =
          cold.reqs_per_sec > 0.0 ? warm.reqs_per_sec / cold.reqs_per_sec : 0.0;
      std::cout << "mode " << mode << ", jobs " << jobs << ": cold "
                << cold.reqs_per_sec << " req/s (p50 " << cold.p50_s << " s, hit rate "
                << cold.hit_rate << "), warm " << warm.reqs_per_sec << " req/s (p50 "
                << warm.p50_s << " s, hit rate " << warm.hit_rate << "), warm/cold "
                << ratio << "x\n";
      if (mode == "plan" && ratio < 3.0) accept = false;
      failures += cold.failures + warm.failures;
      cells.push_back(cold);
      cells.push_back(warm);
    }
  }
  std::cout << "\n"
            << (accept ? "acceptance: plan-mode warm/cold throughput >= 3x at every "
                         "jobs level\n"
                       : "acceptance: FAILED — plan-mode warm/cold ratio under 3x\n");

  // Observability overhead: the warm plan-mode jobs=1 cell with telemetry
  // off vs fully on. The compared number is the service's own in-worker
  // handling time per request (serve.request_seconds sum/count, which
  // covers execution AND the telemetry tail) — closed-loop req/s on a
  // one-core host mostly measures context-switch luck, not the telemetry.
  // Noise on a shared host only ever ADDS time, so each arm's minimum
  // mean across order-alternated repetitions is its least-contaminated
  // estimate; the gate compares those two minima. A busy stretch can
  // still contaminate every rep of one attempt, so a failing verdict is
  // re-measured (up to three attempts, minima accumulated across all of
  // them): a genuine regression stays above the gate in every window,
  // while a noise spike clears on a later attempt.
  std::cout << "\n== Observability overhead: warm plan-mode, telemetry on vs off ==\n";
  constexpr int kObsReps = 7;
  constexpr int kObsIters = 2000;
  constexpr int kObsAttempts = 3;
  double plain_us = 0.0;
  double observed_us = 0.0;
  double overhead_pct = 0.0;
  bool obs_ok = false;
  std::vector<double> plain_samples;
  std::vector<double> observed_samples;
  for (int attempt = 0; attempt < kObsAttempts && !obs_ok; ++attempt) {
    if (attempt > 0) {
      std::cout << "above 5% — re-measuring (attempt " << attempt + 1 << "/"
                << kObsAttempts << ")\n";
    }
    for (int r = 0; r < kObsReps; ++r) {
      Cell first = run_cell("plan", /*warm=*/true, /*jobs=*/1, procs,
                            /*observed=*/r % 2 == 1, kObsIters, /*clients=*/1);
      Cell second = run_cell("plan", /*warm=*/true, /*jobs=*/1, procs,
                             /*observed=*/r % 2 == 0, kObsIters, /*clients=*/1);
      const Cell& plain = r % 2 == 1 ? second : first;
      const Cell& obs = r % 2 == 1 ? first : second;
      std::cout << "rep " << r << ": off " << plain.mean_s * 1e6
                << " us/req, on " << obs.mean_s * 1e6 << " us/req\n";
      plain_samples.push_back(plain.mean_s);
      observed_samples.push_back(obs.mean_s);
      failures += plain.failures + obs.failures;
    }
    const auto minimum = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
    };
    plain_us = minimum(plain_samples) * 1e6;
    observed_us = minimum(observed_samples) * 1e6;
    const double ratio_min = plain_us > 0.0 ? observed_us / plain_us : 0.0;
    overhead_pct = (ratio_min - 1.0) * 100.0;
    obs_ok = ratio_min > 0.0 && ratio_min <= 1.05;
  }
  std::cout << "min-of-means: off " << plain_us << " us/req, on " << observed_us
            << " us/req, overhead " << overhead_pct << "%\n"
            << (obs_ok ? "acceptance: observability overhead within 5% on the "
                         "warm plan-mode path\n"
                       : "acceptance: FAILED — observability overhead above 5% "
                         "on the warm plan-mode path\n");

  if (failures > 0) {
    std::cout << "request failures: " << failures << " (expected 0)\n";
  }

  if (options.bench_json_path.has_value()) {
    json::Value doc = json::Value::make_object();
    doc["schema"] = json::Value::make_str("zcomm-bench-serve-throughput");
    doc["bench"] = json::Value::make_str(options.bench_name);
    doc["clients"] = json::Value::make_int(kClients);
    doc["iters_per_client"] = json::Value::make_int(kItersPerClient);
    doc["procs"] = json::Value::make_int(procs);
    doc["host_cores"] =
        json::Value::make_int(static_cast<long long>(std::thread::hardware_concurrency()));
    json::Value rows = json::Value::make_array();
    for (const Cell& c : cells) {
      json::Value row = json::Value::make_object();
      row["mode"] = json::Value::make_str(c.mode);
      row["cache"] = json::Value::make_str(c.cache);
      row["jobs"] = json::Value::make_int(c.jobs);
      row["requests"] = json::Value::make_int(c.requests);
      row["failures"] = json::Value::make_int(c.failures);
      row["wall_s"] = json::Value::make_num(c.wall_s);
      row["reqs_per_sec"] = json::Value::make_num(c.reqs_per_sec);
      row["p50_s"] = json::Value::make_num(c.p50_s);
      row["p90_s"] = json::Value::make_num(c.p90_s);
      row["p99_s"] = json::Value::make_num(c.p99_s);
      row["mean_s"] = json::Value::make_num(c.mean_s);
      row["plan_cache_hit_rate"] = json::Value::make_num(c.hit_rate);
      rows.push_back(std::move(row));
    }
    doc["cells"] = std::move(rows);
    doc["warm_ge_3x_cold_plan_mode"] = json::Value::make_bool(accept);
    json::Value obs = json::Value::make_object();
    obs["reps"] = json::Value::make_int(kObsReps);
    obs["plain_us_per_request"] = json::Value::make_num(plain_us);
    obs["observed_us_per_request"] = json::Value::make_num(observed_us);
    obs["overhead_pct"] = json::Value::make_num(overhead_pct);
    obs["within_5pct"] = json::Value::make_bool(obs_ok);
    doc["observability_overhead"] = std::move(obs);
    bench::write_bench_json(doc, options);
    std::cout << "(wrote " << *options.bench_json_path << ")\n";
  }
  return accept && obs_ok && failures == 0 ? 0 : 1;
}
