// Guard benchmark for the host profiler's cost, mirroring
// bench_trace_overhead for the other observability layer. Two contracts:
//
//  - off is free: with no profiler attached, a Span is a single
//    thread-local pointer test — BM_SpanOff should be indistinguishable
//    from BM_EmptyLoop (sub-nanosecond per iteration, no allocation);
//  - on is cheap: a full pipeline run with a profiler attached
//    (BM_RunProfiled) should stay within a few percent of the unprofiled
//    run (BM_RunUnprofiled) — the instrumented spans are coarse (per pass
//    / per block), not per-instruction. The <5% budget is enforced by eye
//    or by report_diff --perf-budget on CI reports, not by this binary:
//    google-benchmark measures, it doesn't gate.
#include <benchmark/benchmark.h>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/prof/prof.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"

namespace {

using namespace zc;

const zir::Program& jacobi_program() {
  static const zir::Program p = parser::parse_program(programs::kernel_source("jacobi"));
  return p;
}

const comm::CommPlan& jacobi_plan() {
  static const comm::CommPlan pl = comm::plan_communication(
      jacobi_program(), comm::OptOptions::for_level(comm::OptLevel::kPL));
  return pl;
}

sim::RunConfig jacobi_config() {
  sim::RunConfig cfg;
  cfg.procs = 16;
  cfg.config_overrides = {{"n", 64}, {"iters", 4}};
  return cfg;
}

void BM_EmptyLoop(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EmptyLoop);

void BM_SpanOff(benchmark::State& state) {
  // No profiler attached: the whole Span lifetime is one TL pointer test.
  for (auto _ : state) {
    ZC_PROF_SPAN("off");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanOff);

void BM_SpanOn(benchmark::State& state) {
  prof::Profiler profiler(/*max_timeline_events=*/0);  // aggregate-only cost
  prof::Attach attach(&profiler);
  for (auto _ : state) {
    ZC_PROF_SPAN("on");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanOn);

void BM_SpanOnWithTimeline(benchmark::State& state) {
  prof::Profiler profiler;
  prof::Attach attach(&profiler);
  for (auto _ : state) {
    ZC_PROF_SPAN("on");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanOnWithTimeline);

void BM_RunUnprofiled(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_program(jacobi_program(), jacobi_plan(), jacobi_config()));
  }
}
BENCHMARK(BM_RunUnprofiled);

void BM_RunProfiled(benchmark::State& state) {
  prof::Profiler profiler;
  prof::Attach attach(&profiler);
  for (auto _ : state) {
    ZC_PROF_SPAN("run");
    benchmark::DoNotOptimize(
        sim::run_program(jacobi_program(), jacobi_plan(), jacobi_config()));
  }
}
BENCHMARK(BM_RunProfiled);

void BM_TreeSnapshot(benchmark::State& state) {
  // Cost of aggregating a realistic tree (taken after a profiled run).
  prof::Profiler profiler;
  {
    prof::Attach attach(&profiler);
    ZC_PROF_SPAN("run");
    sim::run_program(jacobi_program(), jacobi_plan(), jacobi_config());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.tree());
  }
}
BENCHMARK(BM_TreeSnapshot);

}  // namespace

BENCHMARK_MAIN();
