// Reproduces Figure 10(a): performance of the optimized benchmark programs
// using PVM — execution times of rr, cc, and pl scaled to the baseline.
#include <iostream>

#include "bench/common.h"
#include "src/support/chart.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 10(a)", "benchmark performance using PVM, scaled to baseline",
                      options);

  BarChart chart("Execution time (fraction of baseline), PVM", {"rr", "cc", "pl"});
  Table t({"program", "experiment", "time (s)", "scaled"});
  t.set_align(1, Align::kLeft);

  std::vector<bench::Row> all;
  for (const auto& info : programs::benchmark_suite()) {
    const auto rows = bench::run_experiments(info, {"baseline", "rr", "cc", "pl"}, options);
    const double base = rows[0].execution_time;
    for (const bench::Row& r : rows) {
      RowBuilder rb;
      rb.cell(r.benchmark).cell(r.experiment).cell(r.execution_time, 6).percent_cell(
          r.execution_time, base);
      t.add_row(std::move(rb).build());
      all.push_back(r);
    }
    t.add_separator();
    chart.add_group(info.name + " (" + bench::scale_label(info, options) + ")",
                    {rows[1].execution_time / base, rows[2].execution_time / base,
                     rows[3].execution_time / base});
  }

  std::cout << t.to_string() << "\n" << chart.to_string() << "\n";
  std::cout
      << "Paper Figure 10(a): fully optimized (pl) times fall as low as 72% of the\n"
         "baseline; cc alone reaches 76%. TOMCATV gains little from pipelining (its\n"
         "tri-diagonal solver's cross-loop dependences leave no room); SIMPLE, whose\n"
         "communication all sits in the main body, gains the most.\n";
  bench::maybe_write_csv(all, options);
  return 0;
}
