// google-benchmark microbenchmarks of the compiler itself: parsing,
// communication planning (per pass), geometry primitives, and a small
// end-to-end simulation step. These measure OUR infrastructure's speed,
// not the paper's machines.
#include <benchmark/benchmark.h>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/runtime/layout.h"
#include "src/sim/engine.h"

namespace {

using namespace zc;

void BM_ParseTomcatv(benchmark::State& state) {
  const auto& src = programs::benchmark("tomcatv").source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser::parse_program(src));
  }
}
BENCHMARK(BM_ParseTomcatv);

void BM_ParseSp(benchmark::State& state) {
  const auto& src = programs::benchmark("sp").source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser::parse_program(src));
  }
}
BENCHMARK(BM_ParseSp);

void BM_PlanCommunication(benchmark::State& state) {
  const zir::Program p = parser::parse_program(programs::benchmark("simple").source);
  const auto level = static_cast<comm::OptLevel>(state.range(0));
  const comm::OptOptions opts = comm::OptOptions::for_level(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::plan_communication(p, opts));
  }
}
BENCHMARK(BM_PlanCommunication)->DenseRange(0, 3);  // baseline..pl

void BM_GenerateTransfers(benchmark::State& state) {
  const zir::Program p = parser::parse_program(programs::benchmark("simple").source);
  const auto blocks = comm::find_blocks(p);
  for (auto _ : state) {
    for (const comm::Block& b : blocks) {
      benchmark::DoNotOptimize(comm::generate_transfers(p, b));
    }
  }
}
BENCHMARK(BM_GenerateTransfers);

void BM_BoxSubtract(benchmark::State& state) {
  const rt::Box a = rt::Box::make(2, {0, 0, 0}, {63, 63, 0});
  const rt::Box b = rt::Box::make(2, {1, 1, 0}, {64, 64, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.subtract(a));
  }
}
BENCHMARK(BM_BoxSubtract);

void BM_EngineJacobiStep(benchmark::State& state) {
  const zir::Program p = parser::parse_program(programs::kernel_source("jacobi"));
  const comm::CommPlan plan =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kPL));
  for (auto _ : state) {
    sim::RunConfig cfg;
    cfg.procs = static_cast<int>(state.range(0));
    cfg.config_overrides = {{"n", 64}, {"iters", 2}};
    benchmark::DoNotOptimize(sim::run_program(p, plan, cfg));
  }
}
BENCHMARK(BM_EngineJacobiStep)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
