// Microbenchmarks of the compiler and simulator infrastructure itself:
// parsing, communication planning (per pass), geometry primitives, and a
// small end-to-end simulation step — these measure OUR code's speed, not
// the paper's machines.
//
// Two layers:
//
//   * the google-benchmark micros (--benchmark_* flags pass through), kept
//     for interactive profiling of individual passes;
//   * a phase-split section that times the pipeline's three phases — plan
//     (comm optimization), sim (the engine run), analysis (trace stats +
//     blame + critical path on a traced run) — and writes them to
//     BENCH_micro_passes.json through the shared envelope writer, with the
//     sim phase measured under BOTH engine cores. The `sim_phase_speedup`
//     field (event vs lockstep on the same workload) is the number the
//     engine rewrite is accountable for; `zcomm_bench check` trend-gates
//     it like any higher-is-better metric.
//
// The phase-split workload is a jacobi-style stencil with a scalar-heavy
// loop body, an inner loop of single-cell "control point" updates, and no
// global reduction, on a deliberately overdecomposed mesh (--procs
// processors on a 32x32 interior): per-statement scheduling overhead
// dominates per-element arithmetic there, which is exactly the regime the
// event-driven core exists for. The lockstep core pays O(procs) per scalar
// statement, per loop-iteration bookkeeping step, and — the dominant term —
// per region evaluation of every statement execution, even when one
// processor is active; the event core's deferred-bump log and precomputed
// active-processor lists make those O(1) / O(active). Reductions are
// deliberately absent: they cost O(procs) in BOTH cores (every processor
// contributes a combine and a barrier stage — that is the semantics), so
// they would only dilute the number this gate is accountable for.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/analysis/blame.h"
#include "src/analysis/critpath.h"
#include "src/comm/optimizer.h"
#include "src/exec/sweep.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/runtime/layout.h"
#include "src/sim/engine.h"
#include "src/support/json.h"
#include "src/trace/stats.h"

namespace {

using namespace zc;

void BM_ParseTomcatv(benchmark::State& state) {
  const auto& src = programs::benchmark("tomcatv").source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser::parse_program(src));
  }
}
BENCHMARK(BM_ParseTomcatv);

void BM_ParseSp(benchmark::State& state) {
  const auto& src = programs::benchmark("sp").source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser::parse_program(src));
  }
}
BENCHMARK(BM_ParseSp);

void BM_PlanCommunication(benchmark::State& state) {
  const zir::Program p = parser::parse_program(programs::benchmark("simple").source);
  const auto level = static_cast<comm::OptLevel>(state.range(0));
  const comm::OptOptions opts = comm::OptOptions::for_level(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::plan_communication(p, opts));
  }
}
BENCHMARK(BM_PlanCommunication)->DenseRange(0, 3);  // baseline..pl

void BM_GenerateTransfers(benchmark::State& state) {
  const zir::Program p = parser::parse_program(programs::benchmark("simple").source);
  const auto blocks = comm::find_blocks(p);
  for (auto _ : state) {
    for (const comm::Block& b : blocks) {
      benchmark::DoNotOptimize(comm::generate_transfers(p, b));
    }
  }
}
BENCHMARK(BM_GenerateTransfers);

void BM_BoxSubtract(benchmark::State& state) {
  const rt::Box a = rt::Box::make(2, {0, 0, 0}, {63, 63, 0});
  const rt::Box b = rt::Box::make(2, {1, 1, 0}, {64, 64, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.subtract(a));
  }
}
BENCHMARK(BM_BoxSubtract);

void BM_EngineJacobiStep(benchmark::State& state) {
  const zir::Program p = parser::parse_program(programs::kernel_source("jacobi"));
  const comm::CommPlan plan =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kPL));
  for (auto _ : state) {
    sim::RunConfig cfg;
    cfg.procs = static_cast<int>(state.range(0));
    cfg.config_overrides = {{"n", 64}, {"iters", 2}};
    benchmark::DoNotOptimize(sim::run_program(p, plan, cfg));
  }
}
BENCHMARK(BM_EngineJacobiStep)->Arg(1)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// Phase split.

struct Phase {
  std::string name;
  std::vector<double> ns;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double pct(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(q * (static_cast<double>(v.size()) - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

template <typename F>
void sample(Phase& phase, int samples, F&& body) {
  for (int s = 0; s < samples; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    phase.ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
}

/// The scheduling-bound workload (see the header comment): one boundary
/// exchange and two small array assigns per iteration, surrounded by the
/// scalar statements and loop bookkeeping whose per-processor cost the
/// event core amortizes away.
constexpr std::string_view kSchedSource = R"zpl(
program sched;

config n     : integer = 32;
config iters : integer = 64;
config probe : integer = 8;

region R = [0..n+1, 0..n+1];
region I = [1..n, 1..n];

direction east = [0, 1], west = [0, -1], north = [-1, 0], south = [1, 0];

var A, B : [R] double;
var w, damp, relax, t, bias, gain : double;

procedure main() {
  [R] A := 0.0;
  [R] B := 0.0;
  [0..n+1, 0] A := 1.0;
  [0, 0..n+1] A := 1.0;
  w := 0.25;
  damp := 1.0;
  relax := 1.9;
  bias := 0.0;
  for it in 1..iters {
    damp := damp * 0.999;
    relax := relax * 0.9995;
    t := damp * relax;
    gain := t * (2.0 - t);
    bias := bias + 0.001 * gain;
    gain := gain * (1.0 - 0.0001 * bias);
    t := t + gain * 0.5;
    relax := relax + 0.0001 * (2.0 - relax);
    w := 0.25 * damp + 0.0 * bias + 0.0 * t;
    -- Control-cell pokes: single-element static regions, active on exactly
    -- one processor. The event core's cached active list makes each O(1);
    -- the lockstep core re-scans every processor per execution.
    for k in 1..probe {
      [0, 0] A := A + 0.0 * w;
      [0, n+1] A := A + 0.0 * t;
      [n+1, 0] A := A + 0.0 * gain;
      [n+1, n+1] A := A + 0.0 * bias;
    }
    [I] B := w * (A@east + A@west + A@north + A@south);
    [I] A := B;
  }
}
)zpl";

void run_phase_split(const bench::Options& options) {
  constexpr long long kN = 32;
  constexpr long long kIters = 64;
  const zir::Program p = parser::parse_program(kSchedSource);
  const comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kPL);
  constexpr long long kProbe = 32;
  const std::map<std::string, long long> configs = {
      {"n", kN}, {"iters", kIters}, {"probe", kProbe}};

  auto run_cfg = [&](sim::EngineKind engine) {
    sim::RunConfig cfg;
    cfg.procs = options.procs;
    cfg.engine = engine;
    cfg.config_overrides = configs;
    return cfg;
  };

  // Phase 1: communication planning (pure compiler work, engine-free).
  Phase plan_phase{"sched/plan", {}};
  sample(plan_phase, 16, [&] { benchmark::DoNotOptimize(comm::plan_communication(p, opts)); });
  const comm::CommPlan plan = comm::plan_communication(p, opts);

  // Phase 2: simulation, both engine cores on the identical (program, plan,
  // config). Bit-identity is asserted — a speedup over a different answer
  // would be meaningless.
  const int sim_samples = options.procs >= 1024 ? 3 : 5;
  std::uint64_t event_sum = 0;
  std::uint64_t lockstep_sum = 0;
  Phase sim_phase{"sched/sim", {}};
  sample(sim_phase, sim_samples, [&] {
    event_sum = exec::result_checksum(sim::run_program(p, plan, run_cfg(sim::EngineKind::kEvent)));
  });
  Phase lockstep_phase{"sched/sim_lockstep", {}};
  sample(lockstep_phase, sim_samples, [&] {
    lockstep_sum =
        exec::result_checksum(sim::run_program(p, plan, run_cfg(sim::EngineKind::kLockstep)));
  });

  // Phase 3: post-run analysis on a traced event run (exact aggregates,
  // per-group blame, critical-path walk).
  trace::Recorder recorder(options.procs);
  sim::RunConfig traced = run_cfg(sim::EngineKind::kEvent);
  traced.recorder = &recorder;
  sim::run_program(p, plan, traced);
  Phase analysis_phase{"sched/analysis", {}};
  sample(analysis_phase, 8, [&] {
    benchmark::DoNotOptimize(trace::compute_stats(recorder));
    benchmark::DoNotOptimize(analysis::compute_blame(recorder, p, plan));
    benchmark::DoNotOptimize(analysis::compute_critical_path(recorder, p, plan));
  });

  const double speedup = median(sim_phase.ns) > 0
                             ? median(lockstep_phase.ns) / median(sim_phase.ns)
                             : 0.0;

  std::printf("\nphase split (sched, n=%lld, iters=%lld, procs=%d):\n", kN, kIters,
              options.procs);
  for (const Phase* ph : {&plan_phase, &sim_phase, &lockstep_phase, &analysis_phase}) {
    std::printf("  %-22s %10.2f ms  (p10 %.2f, p90 %.2f, %zu samples)\n", ph->name.c_str(),
                median(ph->ns) / 1e6, pct(ph->ns, 0.1) / 1e6, pct(ph->ns, 0.9) / 1e6,
                ph->ns.size());
  }
  std::printf("  sim-phase speedup (event vs lockstep): %.2fx\n", speedup);
  if (event_sum != lockstep_sum) {
    std::printf("FAIL: engine cores disagree on the phase-split workload\n");
    std::exit(1);
  }
  std::printf("determinism: phase-split engine checksums bit-identical\n");

  json::Value results = json::Value::make_array();
  for (const Phase* ph : {&plan_phase, &sim_phase, &lockstep_phase, &analysis_phase}) {
    json::Value r = json::Value::make_object();
    r["name"] = json::Value::make_str(ph->name);
    json::Value params = json::Value::make_object();
    params["procs"] = json::Value::make_int(options.procs);
    params["n"] = json::Value::make_int(kN);
    params["iters"] = json::Value::make_int(kIters);
    r["params"] = std::move(params);
    r["median_ns"] = json::Value::make_num(median(ph->ns));
    r["p10_ns"] = json::Value::make_num(pct(ph->ns, 0.1));
    r["p90_ns"] = json::Value::make_num(pct(ph->ns, 0.9));
    r["samples"] = json::Value::make_int(static_cast<long long>(ph->ns.size()));
    results.push_back(std::move(r));
  }
  json::Value doc = json::Value::make_object();
  doc["schema"] = json::Value::make_str("zcomm-bench-perf");
  doc["bench"] = json::Value::make_str(options.bench_name);
  doc["results"] = std::move(results);
  doc["sim_phase_speedup"] = json::Value::make_num(speedup);
  bench::write_bench_json(doc, options);
}

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark consumes its own --benchmark_* flags; the shared bench
  // flag parser ignores anything starting with --benchmark, so both see the
  // full command line without conflict.
  benchmark::Initialize(&argc, argv);
  const bench::Options options = bench::parse_options(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  run_phase_split(options);
  return 0;
}
