// Reproduces Figure 10(b): performance of the fully optimized programs
// using SHMEM's one-way communication, compared with the PVM "pl" bar.
#include <iostream>

#include "bench/common.h"
#include "src/support/chart.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace zc;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("Figure 10(b)", "fully optimized performance: PVM vs. SHMEM", options);

  BarChart chart("Execution time (fraction of baseline)", {"pl", "pl with shmem"});
  Table t({"program", "experiment", "time (s)", "scaled"});
  t.set_align(1, Align::kLeft);

  std::vector<bench::Row> all;
  for (const auto& info : programs::benchmark_suite()) {
    const auto rows =
        bench::run_experiments(info, {"baseline", "pl", "pl with shmem"}, options);
    const double base = rows[0].execution_time;
    for (const bench::Row& r : rows) {
      RowBuilder rb;
      rb.cell(r.benchmark).cell(r.experiment).cell(r.execution_time, 6).percent_cell(
          r.execution_time, base);
      t.add_row(std::move(rb).build());
      all.push_back(r);
    }
    t.add_separator();
    chart.add_group(info.name + " (" + bench::scale_label(info, options) + ")",
                    {rows[1].execution_time / base, rows[2].execution_time / base});
  }

  std::cout << t.to_string() << "\n" << chart.to_string() << "\n";
  std::cout
      << "Paper Figure 10(b): SWM and SIMPLE improve noticeably under SHMEM (SIMPLE\n"
         "to almost 50% of baseline); TOMCATV and SP degrade — the prototype's\n"
         "heavy-weight synchronization is particularly detrimental where parts of the\n"
         "computation are inherently sequential (their line solvers).\n";
  bench::maybe_write_csv(all, options);
  return 0;
}
